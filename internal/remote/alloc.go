// Package remote manages disaggregated memory allocation (paper §V-A/B).
// The memory node's DRAM is split into disjoint regions: one controlled
// (allocated and freed) by the compute node for MemTable flushing, and one
// controlled by the memory node itself for near-data compaction output.
// Because regions are pre-registered with the NIC, compute-side allocation
// is a pure local metadata operation — no network round trip.
//
// Every SSTable records which node allocated it; garbage collection routes
// each free to its owning allocator, batching frees destined for the
// remote side into a single RPC (§V-B).
//
// The allocator is a binary buddy system: extents round up to powers of
// two, freed buddies coalesce, and over-provisioned extents shrink by
// splitting off their upper halves. Table builders must reserve worst-case
// space before the output size is known, so a plain first-fit allocator
// fragments pathologically under the allocate-big/shrink-to-fit pattern;
// buddy blocks keep every hole reusable.
package remote

import (
	"fmt"
	"math/bits"
	"sync"
)

// Align is the minimum allocation granularity in bytes (the smallest buddy
// block).
const Align = 64

const maxOrders = 40

// Allocator hands out power-of-two extents from an address space
// [0, size). It is safe for concurrent use and never blocks on simulation
// primitives.
type Allocator struct {
	size int64

	mu   sync.Mutex
	free [maxOrders]map[int64]bool // per order: offsets of free blocks
	live map[int64]int             // allocated blocks: offset -> order
	used int64
}

// NewAllocator creates an allocator over an address space of size bytes.
// Space is decomposed into maximal aligned power-of-two blocks; a non
// power-of-two size is fully usable, though single allocations are capped
// by the largest such block.
func NewAllocator(size int64) *Allocator {
	a := &Allocator{size: size, live: map[int64]int{}}
	for i := range a.free {
		a.free[i] = map[int64]bool{}
	}
	// Greedy binary decomposition of [0, size).
	off := int64(0)
	for off+Align <= size {
		o := orderOf(size - off)
		// The block must also be naturally aligned at its own size.
		for off&((int64(1)<<o)*Align-1) != 0 || off+(int64(1)<<o)*Align > size {
			o--
		}
		a.free[o][off] = true
		off += (int64(1) << o) * Align
	}
	return a
}

// orderOf returns the largest order o with Align<<o <= n.
func orderOf(n int64) uint {
	return uint(bits.Len64(uint64(n/Align))) - 1
}

// orderFor returns the smallest order whose block holds n bytes.
func orderFor(n int) uint {
	if n <= Align {
		return 0
	}
	blocks := (int64(n) + Align - 1) / Align
	o := uint(bits.Len64(uint64(blocks - 1)))
	return o
}

func blockBytes(order uint) int64 { return (int64(1) << order) * Align }

// Alloc reserves an extent of at least n bytes and returns its offset.
func (a *Allocator) Alloc(n int) (int64, error) {
	want := orderFor(n)
	a.mu.Lock()
	defer a.mu.Unlock()
	// Find the smallest free block that fits, preferring low addresses.
	for o := want; o < maxOrders; o++ {
		if len(a.free[o]) == 0 {
			continue
		}
		off := minKey(a.free[o])
		delete(a.free[o], off)
		// Split down to the requested order, freeing upper halves.
		for cur := o; cur > want; cur-- {
			a.free[cur-1][off+blockBytes(cur-1)] = true
		}
		a.live[off] = int(want)
		a.used += blockBytes(want)
		return off, nil
	}
	return 0, fmt.Errorf("remote: out of memory (want %d, used %d of %d, free %s)",
		n, a.used, a.size, a.freeHistogramLocked())
}

// freeHistogramLocked summarizes the free lists for diagnostics.
func (a *Allocator) freeHistogramLocked() string {
	s := ""
	for o := 0; o < maxOrders; o++ {
		if len(a.free[o]) > 0 {
			s += fmt.Sprintf("%d:%d ", blockBytes(uint(o)), len(a.free[o]))
		}
	}
	if s == "" {
		return "none"
	}
	return s
}

// Free returns the extent at off to the allocator. n must be the extent
// size recorded at allocation (after any Shrink), i.e. Meta.Extent.
func (a *Allocator) Free(off int64, n int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	order, ok := a.live[off]
	if !ok {
		panic(fmt.Sprintf("remote: invalid free at %d: double free or never allocated", off))
	}
	if uint(order) != orderFor(n) {
		panic(fmt.Sprintf("remote: free of %d bytes at %d does not match extent %d (stale handle?)",
			n, off, blockBytes(uint(order))))
	}
	delete(a.live, off)
	a.used -= blockBytes(uint(order))
	a.freeBlockLocked(off, uint(order))
}

// freeBlockLocked inserts a block and coalesces with its buddy chain.
func (a *Allocator) freeBlockLocked(off int64, order uint) {
	for order < maxOrders-1 {
		buddy := off ^ blockBytes(order)
		if !a.free[order][buddy] {
			break
		}
		delete(a.free[order], buddy)
		if buddy < off {
			off = buddy
		}
		order++
	}
	a.free[order][off] = true
}

// Shrink trims the live extent at off down to newSize bytes by splitting
// off upper-half buddies, returning the extent's new size. Table builders
// over-allocate because output sizes are unknown upfront; shrinking after
// Finish keeps space accounting honest without fragmenting the region.
func (a *Allocator) Shrink(off int64, newSize int) int64 {
	want := orderFor(newSize)
	a.mu.Lock()
	defer a.mu.Unlock()
	order, ok := a.live[off]
	if !ok {
		panic(fmt.Sprintf("remote: shrink of unallocated extent at %d", off))
	}
	for uint(order) > want {
		order--
		a.freeBlockLocked(off+blockBytes(uint(order)), uint(order))
		a.used -= blockBytes(uint(order))
	}
	a.live[off] = order
	return blockBytes(uint(order))
}

// Used returns the bytes currently allocated (whole blocks).
func (a *Allocator) Used() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.used
}

// Size returns the total address-space size.
func (a *Allocator) Size() int64 { return a.size }

func minKey(m map[int64]bool) int64 {
	first := true
	var min int64
	for k := range m {
		if first || k < min {
			min = k
			first = false
		}
	}
	return min
}

// ClassSize returns the buddy block size that an allocation of n bytes
// occupies. Engines shrink table extents to a single shared class so every
// freed block is immediately reusable for the next table (no checkerboard
// fragmentation of live and sub-class free buddies).
func ClassSize(n int) int64 { return blockBytes(orderFor(n)) }

// alignUp rounds n up to the allocation granularity (used by tests).
func alignUp(n int64) int64 {
	if n <= 0 {
		return Align
	}
	return (n + Align - 1) &^ (Align - 1)
}
