// Package shard implements dLSM's range sharding (§VII): the key space is
// divided into λ ranges, each backed by an independent LSM-tree. Sharding
// multiplies Level-0 compaction parallelism and shrinks the L0 file count a
// reader must traverse, which is what lifts mixed read/write throughput
// (Fig 10). Nova-LSM's subranges are the same mechanism with λ=64.
package shard

import (
	"bytes"
	"errors"
	"fmt"
	"sort"

	"dlsm/internal/engine"
	"dlsm/internal/memnode"
	"dlsm/internal/rdma"
	"dlsm/internal/telemetry"
)

// DB is a λ-sharded dLSM. Shard i owns user keys in
// [boundaries[i-1], boundaries[i]) with the outer ranges unbounded.
type DB struct {
	shards     []*engine.DB
	boundaries [][]byte    // len = λ-1, ascending
	leases     []leaseHold // write leases, one per shard (NewPrimary/Takeover only)
}

// New opens λ shards on compute node cn. servers selects the backing
// memory node per shard (round-robin over the slice, §IX); pass one server
// for the single-memory-node setup. boundaries must be ascending and have
// length λ-1 (nil for λ=1). Each shard gets Options.WALShard = its index,
// so with Options.Durability set every shard logs to its own slot and
// Recover can find them again.
func New(cn *rdma.Node, servers []*memnode.Server, lambda int, boundaries [][]byte, opts engine.Options) *DB {
	lambda, opts = normalize(lambda, boundaries, opts)
	db := &DB{boundaries: boundaries}
	for i := 0; i < lambda; i++ {
		opts.WALShard = i
		db.shards = append(db.shards, engine.Open(cn, servers[i%len(servers)], opts))
	}
	return db
}

// Recover rebuilds a λ-sharded DB from the remote write-ahead logs a
// crashed compute node left behind. The arguments must match the dead
// DB's New call (same λ, boundaries, servers order and sizing options —
// in particular Options.WALOwner); cn may be any live compute node. Each
// shard replays its own log slot; on any failure the already-recovered
// shards are closed and the error returned.
func Recover(cn *rdma.Node, servers []*memnode.Server, lambda int, boundaries [][]byte, opts engine.Options) (*DB, error) {
	lambda, opts = normalize(lambda, boundaries, opts)
	db := &DB{boundaries: boundaries}
	for i := 0; i < lambda; i++ {
		opts.WALShard = i
		sh, err := engine.Recover(cn, servers[i%len(servers)], opts)
		if err != nil {
			db.Close()
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		db.shards = append(db.shards, sh)
	}
	return db, nil
}

// normalize validates the shard geometry and derives per-shard options
// shared by New and Recover (the two must agree or recovery would look
// for the wrong log slots).
func normalize(lambda int, boundaries [][]byte, opts engine.Options) (int, engine.Options) {
	if lambda < 1 {
		lambda = 1
	}
	if len(boundaries) != lambda-1 {
		panic("shard: need exactly lambda-1 boundaries")
	}
	for i := 1; i < len(boundaries); i++ {
		if bytes.Compare(boundaries[i-1], boundaries[i]) >= 0 {
			panic("shard: boundaries not ascending")
		}
	}
	// Options.CacheBudgetBytes is the whole compute node's cache DRAM;
	// each shard gets an equal slice so λ doesn't multiply the footprint.
	opts.CacheBudgetBytes /= int64(lambda)
	return lambda, opts
}

// UniformBoundaries splits the printf("%0*d", width, i) key space used by
// the db_bench-style workloads into lambda equal ranges over [0, maxKey).
func UniformBoundaries(lambda int, maxKey int, format func(i int) []byte) [][]byte {
	var out [][]byte
	for i := 1; i < lambda; i++ {
		out = append(out, format(maxKey*i/lambda))
	}
	return out
}

// Lambda returns the shard count.
func (db *DB) Lambda() int { return len(db.shards) }

// Shard returns the engine behind shard i (observability, tests).
func (db *DB) Shard(i int) *engine.DB { return db.shards[i] }

// route returns the shard index owning key.
func (db *DB) route(key []byte) int {
	return sort.Search(len(db.boundaries), func(i int) bool {
		return bytes.Compare(key, db.boundaries[i]) < 0
	})
}

// Flush checkpoints every shard.
func (db *DB) Flush() {
	for _, s := range db.shards {
		s.Flush()
	}
}

// WaitForCompactions drains compactions in every shard.
func (db *DB) WaitForCompactions() {
	for _, s := range db.shards {
		s.WaitForCompactions()
	}
}

// TelemetrySnapshot merges the metric registries of all shards: counters
// and gauges sum, histogram buckets combine with quantiles recomputed.
func (db *DB) TelemetrySnapshot() telemetry.Snapshot {
	snaps := make([]telemetry.Snapshot, len(db.shards))
	for i, s := range db.shards {
		snaps[i] = s.Telemetry().Snapshot()
	}
	return telemetry.Merge(snaps...)
}

// SpaceUsed sums remote-memory usage over shards. Shards sharing one
// memory node double-count its self-region; callers wanting exact totals
// should query the servers directly.
func (db *DB) SpaceUsed() int64 {
	var n int64
	for _, s := range db.shards {
		n += s.SpaceUsed()
	}
	return n
}

// Close shuts every shard down, then hands back any write leases so the
// next primary can Acquire instead of Takeover.
func (db *DB) Close() {
	for _, s := range db.shards {
		s.Close()
	}
	db.releaseLeases()
}

// Session is a per-thread handle with one engine session per shard.
type Session struct {
	db       *DB
	sessions []*engine.Session
}

// NewSession creates a thread-local handle across all shards.
func (db *DB) NewSession() *Session {
	s := &Session{db: db, sessions: make([]*engine.Session, len(db.shards))}
	for i, sh := range db.shards {
		s.sessions[i] = sh.NewSession()
	}
	return s
}

// Close releases all per-shard sessions.
func (s *Session) Close() {
	for _, es := range s.sessions {
		es.Close()
	}
}

// Put writes key to its shard.
func (s *Session) Put(key, value []byte) error {
	return s.sessions[s.db.route(key)].Put(key, value)
}

// Delete tombstones key in its shard.
func (s *Session) Delete(key []byte) error {
	return s.sessions[s.db.route(key)].Delete(key)
}

// Apply routes the batch's operations to their shards and applies every
// shard's sub-batch with one sequence-range claim (engine.Session.Apply).
// Operations apply in shard order, not the batch's insertion order. Every
// shard is attempted even after a failure, so one stalled shard cannot
// silently strand later shards' operations; the returned error joins the
// per-shard failures (a failed shard's sub-batch was not applied, the
// other shards' were). The single-shard case forwards the batch untouched.
func (s *Session) Apply(b *engine.Batch) error {
	if len(s.sessions) == 1 {
		return s.sessions[0].Apply(b)
	}
	subs := make([]engine.Batch, len(s.sessions))
	for i := 0; i < b.Len(); i++ {
		key, value, del := b.Entry(i)
		sub := &subs[s.db.route(key)]
		if del {
			sub.Delete(key)
		} else {
			sub.Put(key, value)
		}
	}
	var errs []error
	for i := range subs {
		if subs[i].Len() == 0 {
			continue
		}
		if err := s.sessions[i].Apply(&subs[i]); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

// Get reads key from its shard.
func (s *Session) Get(key []byte) ([]byte, error) {
	return s.sessions[s.db.route(key)].Get(key)
}

// GetOpts is Get with an explicit read policy.
func (s *Session) GetOpts(key []byte, ro engine.ReadOptions) ([]byte, error) {
	return s.sessions[s.db.route(key)].GetOpts(key, ro)
}

// NewIterator scans across all shards in key order. Shards are disjoint
// ranges, so the scan simply concatenates per-shard iterators.
func (s *Session) NewIterator() *Iterator {
	return s.NewIteratorOpts(engine.ReadOptions{})
}

// NewIteratorOpts is NewIterator with an explicit read policy.
func (s *Session) NewIteratorOpts(ro engine.ReadOptions) *Iterator {
	its := make([]*engine.Iterator, len(s.sessions))
	for i, es := range s.sessions {
		its[i] = es.NewIteratorOpts(ro)
	}
	return &Iterator{db: s.db, its: its, cur: -1}
}

// Iterator concatenates the shard iterators in boundary order.
type Iterator struct {
	db  *DB
	its []*engine.Iterator
	cur int
}

// First positions at the smallest key of the first non-empty shard.
func (it *Iterator) First() {
	it.cur = 0
	it.its[0].First()
	it.skipEmpty()
}

// SeekGE positions at the first key >= ukey.
func (it *Iterator) SeekGE(ukey []byte) {
	it.cur = it.db.route(ukey)
	it.its[it.cur].SeekGE(ukey)
	it.skipEmpty()
}

func (it *Iterator) skipEmpty() {
	for it.cur < len(it.its) && !it.its[it.cur].Valid() {
		it.cur++
		if it.cur < len(it.its) {
			it.its[it.cur].First()
		}
	}
}

// Valid reports whether the iterator is positioned.
func (it *Iterator) Valid() bool {
	return it.cur >= 0 && it.cur < len(it.its) && it.its[it.cur].Valid()
}

// Next advances in global key order.
func (it *Iterator) Next() {
	it.its[it.cur].Next()
	it.skipEmpty()
}

// Key returns the current user key.
func (it *Iterator) Key() []byte { return it.its[it.cur].Key() }

// Value returns the current value.
func (it *Iterator) Value() []byte { return it.its[it.cur].Value() }

// Close releases all shard iterators.
func (it *Iterator) Close() {
	for _, x := range it.its {
		x.Close()
	}
}
