// Package shard implements dLSM's range sharding (§VII): the key space is
// divided into λ ranges, each backed by an independent LSM-tree. Sharding
// multiplies Level-0 compaction parallelism and shrinks the L0 file count a
// reader must traverse, which is what lifts mixed read/write throughput
// (Fig 10). Nova-LSM's subranges are the same mechanism with λ=64.
//
// Since the elastic-sharding work the geometry is no longer fixed at open
// time: the routing table is an immutable, epoch-versioned value swapped
// atomically, so shards can split, merge, and migrate online (see
// rebalance.go) while readers and writers keep going.
package shard

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"dlsm/internal/balance"
	"dlsm/internal/engine"
	"dlsm/internal/memnode"
	"dlsm/internal/rdma"
	"dlsm/internal/sim"
	"dlsm/internal/telemetry"
)

// ErrBadBoundaries reports an invalid shard geometry: the boundary count
// must be λ-1 and the boundaries strictly ascending.
var ErrBadBoundaries = errors.New("shard: invalid boundaries")

// entry is one shard of the routing table: the engine owning a key range,
// its stable shard id (also its WAL slot id — stable across routing-table
// rebuilds, unlike the entry's position), the index of its backing memory
// node in DB.servers, and its load sampler (nil unless balancing).
type entry struct {
	eng     *engine.DB
	id      int
	srv     int
	sampler *keySampler
}

// routeTable is one immutable version of the shard geometry. Entry i owns
// user keys in [boundaries[i-1], boundaries[i]) with the outer ranges
// unbounded. A topology change builds a new table and swaps the pointer;
// epochs grow monotonically so in-flight writes can be drained by epoch.
// While a range moves, the table is published with a write gate over it:
// writers targeting [gateLo, gateHi) park until the next swap.
type routeTable struct {
	epoch      uint64
	boundaries [][]byte // len = len(entries)-1, ascending
	entries    []entry
	gated      bool
	gateLo     []byte // nil = -inf
	gateHi     []byte // nil = +inf
}

// route returns the entry index owning key.
func (rt *routeTable) route(key []byte) int {
	return sort.Search(len(rt.boundaries), func(i int) bool {
		return bytes.Compare(key, rt.boundaries[i]) < 0
	})
}

// lo returns entry i's inclusive lower bound (nil = -inf).
func (rt *routeTable) lo(i int) []byte {
	if i == 0 {
		return nil
	}
	return rt.boundaries[i-1]
}

// hi returns entry i's exclusive upper bound (nil = +inf).
func (rt *routeTable) hi(i int) []byte {
	if i == len(rt.boundaries) {
		return nil
	}
	return rt.boundaries[i]
}

// gateCovers reports whether key falls in the gated range.
func (rt *routeTable) gateCovers(key []byte) bool {
	if !rt.gated {
		return false
	}
	if rt.gateLo != nil && bytes.Compare(key, rt.gateLo) < 0 {
		return false
	}
	return rt.gateHi == nil || bytes.Compare(key, rt.gateHi) < 0
}

// indexOf returns the position of the entry with the given shard id, or -1.
func (rt *routeTable) indexOf(id int) int {
	for i := range rt.entries {
		if rt.entries[i].id == id {
			return i
		}
	}
	return -1
}

// DB is a λ-sharded dLSM with an elastic geometry.
type DB struct {
	env      *sim.Env
	cn       *rdma.Node
	servers  []*memnode.Server
	baseOpts engine.Options // normalized per-shard options (WALShard/WALFence overwritten per shard)

	routing atomic.Pointer[routeTable]

	// gateMu/gateCond park writers targeting a range mid-move; rebalMu
	// serializes topology changes (one split/merge/migrate at a time).
	gateMu   *sim.Mutex
	gateCond *sim.Cond
	rebalMu  *sim.Mutex

	nextID         int      // next unused shard id (== WAL slot id)
	initBoundaries [][]byte // geometry passed at open time

	leased bool // NewPrimary/Takeover: new shards claim leases too
	holder int
	leases map[int]leaseHold // by shard id

	secondary bool // read-only secondary: no rebalancing

	// Engines retired by merge/migrate stay open (readers may still hold
	// their iterators) until Close; their telemetry keeps counting toward
	// the merged totals.
	retMu   sync.Mutex
	retired []*engine.DB

	sessMu   sync.Mutex
	sessions map[*Session]struct{}

	bal    *balance.Balancer
	balReg *telemetry.Registry
}

// newShell builds the DB scaffolding shared by every constructor.
func newShell(cn *rdma.Node, servers []*memnode.Server, opts engine.Options, lambda int) *DB {
	env := cn.Fabric().Env()
	db := &DB{
		env:      env,
		cn:       cn,
		servers:  servers,
		baseOpts: opts,
		nextID:   lambda,
		gateMu:   sim.NewMutex(env),
		rebalMu:  sim.NewMutex(env),
		leases:   map[int]leaseHold{},
		sessions: map[*Session]struct{}{},
	}
	db.gateCond = sim.NewNamedCond(env, db.gateMu, "shard.gate")
	return db
}

// finish publishes the initial routing table and, when Options.AutoBalance
// is set on a primary, starts the rebalancer.
func (db *DB) finish(entries []entry) {
	db.routing.Store(&routeTable{epoch: 1, boundaries: db.initBoundaries, entries: entries})
	if db.baseOpts.AutoBalance && !db.secondary {
		db.startBalancer()
	}
}

// New opens λ shards on compute node cn. servers selects the backing
// memory node per shard (round-robin over the slice, §IX); pass one server
// for the single-memory-node setup. boundaries must be ascending and have
// length λ-1 (nil for λ=1) — with elastic sharding they are a starting
// point, not a contract: splits and merges move them afterwards. Each
// shard gets Options.WALShard = its id, so with Options.Durability set
// every shard logs to its own slot and Recover can find them again.
func New(cn *rdma.Node, servers []*memnode.Server, lambda int, boundaries [][]byte, opts engine.Options) (*DB, error) {
	lambda, opts, err := normalize(lambda, boundaries, opts)
	if err != nil {
		return nil, err
	}
	db := newShell(cn, servers, opts, lambda)
	db.initBoundaries = boundaries
	var entries []entry
	for i := 0; i < lambda; i++ {
		opts.WALShard = i
		e := entry{eng: engine.Open(cn, servers[i%len(servers)], opts), id: i, srv: i % len(servers)}
		if opts.AutoBalance {
			e.sampler = newKeySampler()
		}
		entries = append(entries, e)
	}
	db.finish(entries)
	return db, nil
}

// Recover rebuilds a λ-sharded DB from the remote write-ahead logs a
// crashed compute node left behind. The arguments must match the dead
// DB's New call (same λ, boundaries, servers order and sizing options —
// in particular Options.WALOwner); cn may be any live compute node. Each
// shard replays its own log slot; on any failure the already-recovered
// shards are closed and the error returned. Recovery reconstructs the
// *initial* geometry: if the dead primary had split or merged shards
// online, recover with the geometry it last ran (the routing table is
// compute-local state, not yet persisted).
func Recover(cn *rdma.Node, servers []*memnode.Server, lambda int, boundaries [][]byte, opts engine.Options) (*DB, error) {
	lambda, opts, err := normalize(lambda, boundaries, opts)
	if err != nil {
		return nil, err
	}
	db := newShell(cn, servers, opts, lambda)
	db.initBoundaries = boundaries
	var entries []entry
	for i := 0; i < lambda; i++ {
		opts.WALShard = i
		sh, err := engine.Recover(cn, servers[i%len(servers)], opts)
		if err != nil {
			closeEntries(entries)
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		e := entry{eng: sh, id: i, srv: i % len(servers)}
		if opts.AutoBalance {
			e.sampler = newKeySampler()
		}
		entries = append(entries, e)
	}
	db.finish(entries)
	return db, nil
}

func closeEntries(entries []entry) {
	for _, e := range entries {
		e.eng.Close()
	}
}

// normalize validates the shard geometry and derives per-shard options
// shared by New and Recover (the two must agree or recovery would look
// for the wrong log slots).
func normalize(lambda int, boundaries [][]byte, opts engine.Options) (int, engine.Options, error) {
	if lambda < 1 {
		lambda = 1
	}
	if len(boundaries) != lambda-1 {
		return 0, opts, fmt.Errorf("%w: need exactly lambda-1 boundaries (lambda=%d, got %d)",
			ErrBadBoundaries, lambda, len(boundaries))
	}
	for i := 1; i < len(boundaries); i++ {
		if bytes.Compare(boundaries[i-1], boundaries[i]) >= 0 {
			return 0, opts, fmt.Errorf("%w: not ascending at index %d", ErrBadBoundaries, i)
		}
	}
	// Options.CacheBudgetBytes is the whole compute node's cache DRAM;
	// each shard gets an equal slice so λ doesn't multiply the footprint.
	opts.CacheBudgetBytes /= int64(lambda)
	return lambda, opts, nil
}

// UniformBoundaries splits the printf("%0*d", width, i) key space used by
// the db_bench-style workloads into lambda equal ranges over [0, maxKey).
func UniformBoundaries(lambda int, maxKey int, format func(i int) []byte) [][]byte {
	var out [][]byte
	for i := 1; i < lambda; i++ {
		out = append(out, format(maxKey*i/lambda))
	}
	return out
}

// Lambda returns the current shard count.
func (db *DB) Lambda() int { return len(db.routing.Load().entries) }

// Shard returns the engine behind the shard currently at position i
// (observability, tests).
func (db *DB) Shard(i int) *engine.DB { return db.routing.Load().entries[i].eng }

// Boundaries returns a copy of the current shard boundaries (λ-1 keys,
// ascending). With AutoBalance or manual splits these drift from the
// geometry passed at open time.
func (db *DB) Boundaries() [][]byte {
	rt := db.routing.Load()
	out := make([][]byte, len(rt.boundaries))
	for i, b := range rt.boundaries {
		out[i] = append([]byte(nil), b...)
	}
	return out
}

// route returns the shard index owning key.
func (db *DB) route(key []byte) int {
	return db.routing.Load().route(key)
}

// Flush checkpoints every shard.
func (db *DB) Flush() {
	for _, e := range db.routing.Load().entries {
		e.eng.Flush()
	}
}

// WaitForCompactions drains compactions in every shard.
func (db *DB) WaitForCompactions() {
	for _, e := range db.routing.Load().entries {
		e.eng.WaitForCompactions()
	}
}

// perShardCounters and perShardHists are the engine series the snapshot
// re-keys by shard id when more than one shard exists, so rebalance
// decisions and the dlsm-bench metrics dump show per-shard load instead of
// only the aggregate.
var (
	perShardCounters = []string{"engine.writes", "engine.reads", "engine.stalls", "engine.stall.time_ns"}
	perShardHists    = []string{"engine.write.latency_ns", "engine.read.latency_ns"}
)

// keyedShardSnapshot re-keys one shard's load metrics under a
// "shard<id>." prefix.
func keyedShardSnapshot(id int, s telemetry.Snapshot) telemetry.Snapshot {
	out := telemetry.Snapshot{
		Counters:   map[string]int64{},
		Histograms: map[string]telemetry.HistogramSnapshot{},
	}
	prefix := fmt.Sprintf("shard%d.", id)
	for _, name := range perShardCounters {
		if v, ok := s.Counters[name]; ok {
			out.Counters[prefix+strings.TrimPrefix(name, "engine.")] = v
		}
	}
	for _, name := range perShardHists {
		if h, ok := s.Histograms[name]; ok {
			out.Histograms[prefix+strings.TrimPrefix(name, "engine.")] = h
		}
	}
	return out
}

// TelemetrySnapshot merges the metric registries of all shards: counters
// and gauges sum, histogram buckets combine with quantiles recomputed.
// With more than one shard, per-shard op counters and latency histograms
// additionally appear keyed by shard id ("shard<id>.writes", ...); retired
// engines' history keeps counting toward the totals, and the rebalancer's
// own balance.* series ride along when AutoBalance is on.
func (db *DB) TelemetrySnapshot() telemetry.Snapshot {
	rt := db.routing.Load()
	var snaps []telemetry.Snapshot
	perShard := len(rt.entries) > 1
	for _, e := range rt.entries {
		s := e.eng.Telemetry().Snapshot()
		snaps = append(snaps, s)
		if perShard {
			snaps = append(snaps, keyedShardSnapshot(e.id, s))
		}
	}
	db.retMu.Lock()
	for _, e := range db.retired {
		snaps = append(snaps, e.Telemetry().Snapshot())
	}
	db.retMu.Unlock()
	if db.balReg != nil {
		snaps = append(snaps, db.balReg.Snapshot())
	}
	return telemetry.Merge(snaps...)
}

// SpaceUsed sums remote-memory usage over shards. Shards sharing one
// memory node double-count its self-region; callers wanting exact totals
// should query the servers directly.
func (db *DB) SpaceUsed() int64 {
	var n int64
	for _, e := range db.routing.Load().entries {
		n += e.eng.SpaceUsed()
	}
	return n
}

// Close stops the rebalancer, shuts every shard (and every engine retired
// by merges/migrations) down, then hands back any write leases so the next
// primary can Acquire instead of Takeover.
func (db *DB) Close() {
	if db.bal != nil {
		db.bal.Close()
	}
	for _, e := range db.routing.Load().entries {
		e.eng.Close()
	}
	db.retMu.Lock()
	retired := db.retired
	db.retired = nil
	db.retMu.Unlock()
	for _, e := range retired {
		e.Close()
	}
	db.releaseLeases()
}

// Session is a per-thread handle across all shards. It lazily opens one
// engine session per shard it touches (shards present at creation get
// theirs eagerly; shards born from later splits/migrations on first use).
type Session struct {
	db *DB

	// inflight publishes the routing epoch of the write this session is
	// currently applying (0 = idle). A topology change publishes its new
	// table first, then waits until no session is still mid-write under an
	// older epoch — after that, every write either landed in the source
	// shard before the fence or routes through the new table.
	inflight atomic.Uint64

	cache map[*engine.DB]*engine.Session
	order []*engine.Session // creation order, for deterministic Close
}

// NewSession creates a thread-local handle across all shards.
func (db *DB) NewSession() *Session {
	s := &Session{db: db, cache: map[*engine.DB]*engine.Session{}}
	for _, e := range db.routing.Load().entries {
		s.session(e.eng)
	}
	db.sessMu.Lock()
	db.sessions[s] = struct{}{}
	db.sessMu.Unlock()
	return s
}

// session returns this session's handle on eng, opening it on first use.
func (s *Session) session(eng *engine.DB) *engine.Session {
	if es, ok := s.cache[eng]; ok {
		return es
	}
	es := eng.NewSession()
	s.cache[eng] = es
	s.order = append(s.order, es)
	return es
}

// Close releases all per-shard sessions.
func (s *Session) Close() {
	s.db.sessMu.Lock()
	delete(s.db.sessions, s)
	s.db.sessMu.Unlock()
	for _, es := range s.order {
		es.Close()
	}
}

// writeSession routes a write: it publishes the routing epoch it is about
// to write under, re-checks the table did not move underneath (the
// publish-then-recheck makes the rebalancer's drain sound), and parks on
// the gate if the key's range is mid-move.
func (s *Session) writeSession(key []byte) *engine.Session {
	db := s.db
	for {
		rt := db.routing.Load()
		s.inflight.Store(rt.epoch)
		if db.routing.Load() != rt {
			s.inflight.Store(0)
			continue
		}
		if rt.gateCovers(key) {
			s.inflight.Store(0)
			db.waitGate(rt)
			continue
		}
		e := rt.entries[rt.route(key)]
		e.sampler.offer(key)
		return s.session(e.eng)
	}
}

// waitGate blocks until the gated table rt is replaced.
func (db *DB) waitGate(rt *routeTable) {
	db.gateMu.Lock()
	for db.routing.Load() == rt {
		db.gateCond.Wait()
	}
	db.gateMu.Unlock()
}

// Put writes key to its shard.
func (s *Session) Put(key, value []byte) error {
	es := s.writeSession(key)
	err := es.Put(key, value)
	s.inflight.Store(0)
	return err
}

// Delete tombstones key in its shard.
func (s *Session) Delete(key []byte) error {
	es := s.writeSession(key)
	err := es.Delete(key)
	s.inflight.Store(0)
	return err
}

// Apply routes the batch's operations to their shards and applies every
// shard's sub-batch with one sequence-range claim (engine.Session.Apply).
// Operations apply in shard order, not the batch's insertion order. Every
// shard is attempted even after a failure, so one stalled shard cannot
// silently strand later shards' operations; the returned error joins the
// per-shard failures (a failed shard's sub-batch was not applied, the
// other shards' were). The single-shard case forwards the batch untouched.
func (s *Session) Apply(b *engine.Batch) error {
	db := s.db
	for {
		rt := db.routing.Load()
		s.inflight.Store(rt.epoch)
		if db.routing.Load() != rt {
			s.inflight.Store(0)
			continue
		}
		if rt.gated {
			gated := false
			for i := 0; i < b.Len(); i++ {
				key, _, _ := b.Entry(i)
				if rt.gateCovers(key) {
					gated = true
					break
				}
			}
			if gated {
				s.inflight.Store(0)
				db.waitGate(rt)
				continue
			}
		}
		err := s.applyWith(rt, b)
		s.inflight.Store(0)
		return err
	}
}

func (s *Session) applyWith(rt *routeTable, b *engine.Batch) error {
	if len(rt.entries) == 1 {
		return s.session(rt.entries[0].eng).Apply(b)
	}
	subs := make([]engine.Batch, len(rt.entries))
	for i := 0; i < b.Len(); i++ {
		key, value, del := b.Entry(i)
		j := rt.route(key)
		rt.entries[j].sampler.offer(key)
		sub := &subs[j]
		if del {
			sub.Delete(key)
		} else {
			sub.Put(key, value)
		}
	}
	var errs []error
	for i := range subs {
		if subs[i].Len() == 0 {
			continue
		}
		if err := s.session(rt.entries[i].eng).Apply(&subs[i]); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", rt.entries[i].id, err))
		}
	}
	return errors.Join(errs...)
}

// Get reads key from its shard. Reads never park on a move gate: until the
// table flips they are served by the source shard, which stays complete
// for the moving range up to the fence.
func (s *Session) Get(key []byte) ([]byte, error) {
	rt := s.db.routing.Load()
	e := rt.entries[rt.route(key)]
	e.sampler.offer(key)
	return s.session(e.eng).Get(key)
}

// GetOpts is Get with an explicit read policy.
func (s *Session) GetOpts(key []byte, ro engine.ReadOptions) ([]byte, error) {
	rt := s.db.routing.Load()
	e := rt.entries[rt.route(key)]
	e.sampler.offer(key)
	return s.session(e.eng).GetOpts(key, ro)
}

// NewIterator scans across all shards in key order. Shards are disjoint
// ranges, so the scan simply concatenates per-shard iterators.
func (s *Session) NewIterator() *Iterator {
	return s.NewIteratorOpts(engine.ReadOptions{})
}

// NewIteratorOpts is NewIterator with an explicit read policy. The
// iterator is pinned to the routing table current at creation; a
// concurrent split/merge/migrate does not disturb it.
func (s *Session) NewIteratorOpts(ro engine.ReadOptions) *Iterator {
	rt := s.db.routing.Load()
	its := make([]*engine.Iterator, len(rt.entries))
	for i, e := range rt.entries {
		its[i] = s.session(e.eng).NewIteratorOpts(ro)
	}
	return &Iterator{rt: rt, its: its, cur: -1}
}

// Iterator concatenates the shard iterators in boundary order. Each shard
// iterator is clamped at its shard's upper boundary: after a split the
// source engine still physically holds the moved keys (they are reclaimed
// only when the DB closes), and the clamp keeps that garbage invisible.
type Iterator struct {
	rt  *routeTable
	its []*engine.Iterator
	cur int
}

// shardValid reports whether shard i's iterator is positioned inside its
// owned range.
func (it *Iterator) shardValid(i int) bool {
	x := it.its[i]
	if !x.Valid() {
		return false
	}
	hi := it.rt.hi(i)
	return hi == nil || bytes.Compare(x.Key(), hi) < 0
}

// First positions at the smallest key of the first non-empty shard.
func (it *Iterator) First() {
	it.cur = 0
	it.its[0].First()
	it.skipEmpty()
}

// SeekGE positions at the first key >= ukey.
func (it *Iterator) SeekGE(ukey []byte) {
	it.cur = it.rt.route(ukey)
	it.its[it.cur].SeekGE(ukey)
	it.skipEmpty()
}

func (it *Iterator) skipEmpty() {
	for it.cur < len(it.its) && !it.shardValid(it.cur) {
		it.cur++
		if it.cur < len(it.its) {
			it.its[it.cur].First()
		}
	}
}

// Valid reports whether the iterator is positioned.
func (it *Iterator) Valid() bool {
	return it.cur >= 0 && it.cur < len(it.its) && it.shardValid(it.cur)
}

// Next advances in global key order.
func (it *Iterator) Next() {
	it.its[it.cur].Next()
	it.skipEmpty()
}

// Key returns the current user key.
func (it *Iterator) Key() []byte { return it.its[it.cur].Key() }

// Value returns the current value.
func (it *Iterator) Value() []byte { return it.its[it.cur].Value() }

// Close releases all shard iterators.
func (it *Iterator) Close() {
	for _, x := range it.its {
		x.Close()
	}
}
