package shard

import (
	"errors"
	"fmt"

	"dlsm/internal/engine"
	"dlsm/internal/lease"
	"dlsm/internal/memnode"
	"dlsm/internal/rdma"
)

// ErrLeaseHeld is returned by NewPrimary when another compute node holds a
// shard's write lease (use Takeover to depose a dead one).
var ErrLeaseHeld = lease.ErrHeld

// leaseHold pairs one shard's lease client with the lease it holds; Close
// hands the lease back.
type leaseHold struct {
	client *lease.Client
	l      lease.Lease
}

// NewPrimary is New plus write-lease acquisition: before opening shard i it
// acquires the (Options.WALOwner, i) lease on the shard's memory node under
// the identity holder (the compute index — it must be stable across
// restarts so a recovered node recognizes its own leases), and wires the
// lease word into the shard's WAL as the commit fence. If any shard's lease
// is held by another live compute node, everything already claimed is
// released and ErrLeaseHeld returned. Requires Options.Durability (the
// fence lives on the WAL commit path, and lease handoff replays the log).
// Shards born from later splits claim their own lease the same way.
func NewPrimary(cn *rdma.Node, servers []*memnode.Server, lambda int, boundaries [][]byte, opts engine.Options, holder int) (*DB, error) {
	if opts.Durability == engine.DurabilityNone {
		return nil, errors.New("shard: NewPrimary requires Options.Durability (the lease fence rides the WAL)")
	}
	return openLeased(cn, servers, lambda, boundaries, opts, holder, false)
}

// Takeover deposes the current holder of every shard lease and recovers
// the shards from their remote write-ahead logs. The lease CAS lands
// before the log slot is read, so the deposed owner's unacknowledged
// appends can never ack afterwards (its commit fence fails with
// engine.ErrFenced) and the recovery observes every write it ever
// acknowledged. The arguments must match the dead primary's NewPrimary
// call the way Recover's must match New's; holder is the new owner's own
// compute index.
func Takeover(cn *rdma.Node, servers []*memnode.Server, lambda int, boundaries [][]byte, opts engine.Options, holder int) (*DB, error) {
	return openLeased(cn, servers, lambda, boundaries, opts, holder, true)
}

// openLeased opens (takeover: recovers) the λ shards with a write lease
// claimed per shard before its engine touches the log slot.
func openLeased(cn *rdma.Node, servers []*memnode.Server, lambda int, boundaries [][]byte, opts engine.Options, holder int, takeover bool) (*DB, error) {
	lambda, opts, err := normalize(lambda, boundaries, opts)
	if err != nil {
		return nil, err
	}
	db := newShell(cn, servers, opts, lambda)
	db.initBoundaries = boundaries
	db.leased = true
	db.holder = holder
	var entries []entry
	fail := func(err error) (*DB, error) {
		closeEntries(entries)
		db.releaseLeases()
		return nil, err
	}
	for i := 0; i < lambda; i++ {
		srv := servers[i%len(servers)]
		hold, err := claimShard(cn, srv, opts.Replica, opts.WALOwner, i, holder, takeover)
		if err != nil {
			return fail(fmt.Errorf("shard %d lease: %w", i, err))
		}
		db.leases[i] = hold
		opts.WALShard = i
		opts.WALFence = hold.client.Addr()
		opts.WALFenceWord = hold.l.Word()
		e := entry{id: i, srv: i % len(servers)}
		if takeover {
			e.eng, err = engine.Recover(cn, srv, opts)
			if err != nil {
				return fail(fmt.Errorf("shard %d: %w", i, err))
			}
		} else {
			e.eng = engine.Open(cn, srv, opts)
		}
		if opts.AutoBalance {
			e.sampler = newKeySampler()
		}
		entries = append(entries, e)
	}
	db.finish(entries)
	return db, nil
}

// claimShard opens (creating on first use) the lease entry of
// (owner, shard) and claims it. With a replica memory node configured, the
// replica's lease table gets a same-key entry and the client writes every
// claimed word through to it, so a takeover after the primary memory node
// dies still observes the current epoch (see lease.Client.SetMirror).
func claimShard(cn *rdma.Node, srv, replica *memnode.Server, owner, shard, holder int, takeover bool) (leaseHold, error) {
	ls, err := srv.OpenLease(lease.SlotKey(owner, shard))
	if err != nil {
		return leaseHold{}, err
	}
	cl := lease.NewClient(cn, srv.Node(), ls.Addr, holder)
	if replica != nil {
		rs, rerr := replica.OpenLease(lease.SlotKey(owner, shard))
		if rerr != nil {
			cl.Close()
			return leaseHold{}, fmt.Errorf("replica lease entry: %w", rerr)
		}
		cl.SetMirror(replica.Node(), rs.Addr)
	}
	var l lease.Lease
	if takeover {
		l, err = cl.Takeover()
	} else {
		l, err = cl.Acquire()
	}
	if err != nil {
		cl.Close()
		return leaseHold{}, err
	}
	return leaseHold{client: cl, l: l}, nil
}

// releaseLeases hands every held shard lease back. A hold deposed by
// takeover (or unreachable after a crash) is tolerated: the entry already
// belongs to — or will be taken over by — the next owner, and releasing
// never rewinds the epoch either way.
func (db *DB) releaseLeases() {
	for id, h := range db.leases {
		_ = h.client.Release(h.l)
		h.client.Close()
		delete(db.leases, id)
	}
}

// OpenSecondary attaches a read-only secondary across all λ shards of the
// primary identified by Options.WALOwner (see engine.OpenSecondary). The
// geometry arguments must match the primary's; the secondary builds its
// own compute-local state per shard and serves reads at the primary's last
// published checkpoints. Secondaries never rebalance — the routing table
// is compute-local, so a primary's online splits are invisible here; reads
// stay correct regardless because secondaries route over the original
// geometry, whose shards keep serving their initial full ranges.
func OpenSecondary(cn *rdma.Node, servers []*memnode.Server, lambda int, boundaries [][]byte, opts engine.Options) (*DB, error) {
	lambda, opts, err := normalize(lambda, boundaries, opts)
	if err != nil {
		return nil, err
	}
	db := newShell(cn, servers, opts, lambda)
	db.initBoundaries = boundaries
	db.secondary = true
	var entries []entry
	for i := 0; i < lambda; i++ {
		opts.WALShard = i
		sh, err := engine.OpenSecondary(cn, servers[i%len(servers)], opts)
		if err != nil {
			closeEntries(entries)
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		entries = append(entries, entry{eng: sh, id: i, srv: i % len(servers)})
	}
	db.finish(entries)
	return db, nil
}

// RefreshView refreshes every shard of a read-only secondary from its
// primary's latest published WAL checkpoint.
func (db *DB) RefreshView() error {
	var errs []error
	for _, e := range db.routing.Load().entries {
		if err := e.eng.RefreshView(); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", e.id, err))
		}
	}
	return errors.Join(errs...)
}

// PublishCheckpoint synchronously publishes every shard's current
// checkpoint; call after Flush to make flushed writes observable by
// secondaries' next RefreshView.
func (db *DB) PublishCheckpoint() error {
	var errs []error
	for _, e := range db.routing.Load().entries {
		if err := e.eng.PublishCheckpoint(); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", e.id, err))
		}
	}
	return errors.Join(errs...)
}
