package shard

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"dlsm/internal/engine"
	"dlsm/internal/memnode"
	"dlsm/internal/rdma"
	"dlsm/internal/sim"
)

// harness2 is harness with two memory nodes (migration targets).
func harness2(t *testing.T, lambda int, n int, o engine.Options, fn func(env *sim.Env, db *DB)) {
	t.Helper()
	env := sim.NewEnv()
	fab := rdma.NewFabric(env, rdma.EDR100())
	cn := fab.AddNode("compute", 24)
	cfg := memnode.DefaultConfig()
	cfg.ComputeRegionSize = 128 << 20
	cfg.SelfRegionSize = 128 << 20
	var servers []*memnode.Server
	for i := 0; i < 2; i++ {
		mn := fab.AddNode(fmt.Sprintf("memory%d", i), 12)
		srv := memnode.NewServer(mn, cfg)
		srv.Start()
		servers = append(servers, srv)
	}
	env.Run(func() {
		bounds := UniformBoundaries(lambda, n, key)
		db, err := New(cn, servers, lambda, bounds, o)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		fn(env, db)
		db.Close()
		fab.Close()
	})
	env.Wait()
}

func checkAll(t *testing.T, s *Session, n int, deleted map[int]bool) {
	t.Helper()
	for i := 0; i < n; i++ {
		v, err := s.Get(key(i))
		if deleted[i] {
			if err != engine.ErrNotFound {
				t.Fatalf("Get(%s) after delete = %q, %v; want ErrNotFound", key(i), v, err)
			}
			continue
		}
		if err != nil || !bytes.Equal(v, key(i)) {
			t.Fatalf("Get(%s) = %q, %v", key(i), v, err)
		}
	}
}

func TestSplitOnline(t *testing.T) {
	const n = 1200
	harness2(t, 1, n, opts(), func(env *sim.Env, db *DB) {
		s := db.NewSession()
		defer s.Close()
		for i := 0; i < n; i++ {
			if err := s.Put(key(i), key(i)); err != nil {
				t.Fatalf("Put: %v", err)
			}
		}
		if err := db.SplitShardAt(0, key(n/2)); err != nil {
			t.Fatalf("SplitShardAt: %v", err)
		}
		if db.Lambda() != 2 {
			t.Fatalf("Lambda = %d, want 2", db.Lambda())
		}
		if got := db.Boundaries(); len(got) != 1 || !bytes.Equal(got[0], key(n/2)) {
			t.Fatalf("Boundaries = %q", got)
		}
		// Writes after the split land in the right shards and reads see
		// both halves.
		for i := 0; i < n; i += 7 {
			if err := s.Put(key(i), key(i)); err != nil {
				t.Fatalf("post-split Put: %v", err)
			}
		}
		checkAll(t, s, n, nil)
		// A second split of the new right shard.
		rt := db.routing.Load()
		if err := db.SplitShardAt(rt.entries[1].id, key(3*n/4)); err != nil {
			t.Fatalf("second split: %v", err)
		}
		if db.Lambda() != 3 {
			t.Fatalf("Lambda = %d, want 3", db.Lambda())
		}
		checkAll(t, s, n, nil)

		// Cross-shard scan still yields global key order.
		it := s.NewIterator()
		defer it.Close()
		count := 0
		for it.First(); it.Valid(); it.Next() {
			if !bytes.Equal(it.Key(), key(count)) {
				t.Fatalf("scan[%d] = %q", count, it.Key())
			}
			count++
		}
		if count != n {
			t.Fatalf("scanned %d, want %d", count, n)
		}
	})
}

func TestSplitWithConcurrentWriters(t *testing.T) {
	const n = 2000
	harness2(t, 1, n, opts(), func(env *sim.Env, db *DB) {
		s := db.NewSession()
		defer s.Close()
		for i := 0; i < n; i++ {
			s.Put(key(i), []byte("v0"))
		}
		// A writer entity hammers the half that is about to move while the
		// split runs; every acked write must be visible afterwards.
		done := make(chan struct{})
		acked := map[int][]byte{}
		env.Go(func() {
			ws := db.NewSession()
			defer ws.Close()
			r := rand.New(rand.NewSource(7))
			for j := 0; j < 800; j++ {
				i := n/2 + r.Intn(n/2)
				v := []byte(fmt.Sprintf("v%d", j))
				if err := ws.Put(key(i), v); err != nil {
					t.Errorf("writer Put: %v", err)
					break
				}
				acked[i] = v
			}
			close(done)
		})
		env.Sleep(100_000) // let the writer get going mid-stream
		if err := db.SplitShardAt(0, key(n/2)); err != nil {
			t.Fatalf("SplitShardAt: %v", err)
		}
		<-done
		for i, want := range acked {
			v, err := s.Get(key(i))
			if err != nil || !bytes.Equal(v, want) {
				t.Fatalf("acked write lost: Get(%s) = %q, %v; want %q", key(i), v, err, want)
			}
		}
	})
}

func TestMergeRestoresGeometryAndDeletes(t *testing.T) {
	const n = 800
	harness2(t, 1, n, opts(), func(env *sim.Env, db *DB) {
		s := db.NewSession()
		defer s.Close()
		for i := 0; i < n; i++ {
			s.Put(key(i), key(i))
		}
		if err := db.SplitShardAt(0, key(n/2)); err != nil {
			t.Fatalf("split: %v", err)
		}
		// Delete keys in the right shard after the split: the source
		// engine still holds them as garbage below its clamp. A merge that
		// failed to purge would resurrect them.
		deleted := map[int]bool{}
		for i := n / 2; i < n; i += 13 {
			if err := s.Delete(key(i)); err != nil {
				t.Fatalf("Delete: %v", err)
			}
			deleted[i] = true
		}
		if err := db.MergeShard(0); err != nil {
			t.Fatalf("merge: %v", err)
		}
		if db.Lambda() != 1 || len(db.Boundaries()) != 0 {
			t.Fatalf("Lambda = %d, Boundaries = %d after merge", db.Lambda(), len(db.Boundaries()))
		}
		checkAll(t, s, n, deleted)
		// The merged shard accepts writes over the whole range again.
		if err := s.Put(key(n-1), []byte("after-merge")); err != nil {
			t.Fatalf("post-merge Put: %v", err)
		}
		if v, _ := s.Get(key(n - 1)); !bytes.Equal(v, []byte("after-merge")) {
			t.Fatalf("post-merge Get = %q", v)
		}
	})
}

func TestMigrateIteratorPath(t *testing.T) {
	const n = 600
	harness2(t, 2, n, opts(), func(env *sim.Env, db *DB) {
		s := db.NewSession()
		defer s.Close()
		for i := 0; i < n; i++ {
			s.Put(key(i), key(i))
		}
		// λ=2 over 2 servers round-robins shard 1 onto server 1; move it
		// to server 0. No WAL → iterator fallback path.
		if err := db.MigrateShard(1, 0); err != nil {
			t.Fatalf("MigrateShard: %v", err)
		}
		rt := db.routing.Load()
		if rt.entries[1].srv != 0 {
			t.Fatalf("shard at position 1 on server %d, want 0", rt.entries[1].srv)
		}
		checkAll(t, s, n, nil)
		for i := n / 2; i < n; i += 11 {
			if err := s.Put(key(i), []byte("moved")); err != nil {
				t.Fatalf("post-migrate Put: %v", err)
			}
			if v, _ := s.Get(key(i)); !bytes.Equal(v, []byte("moved")) {
				t.Fatalf("post-migrate Get = %q", v)
			}
		}
	})
}

func TestMigrateClonePath(t *testing.T) {
	const n = 600
	o := opts()
	o.Durability = engine.DurabilitySync
	o.WALOwner = 3
	harness2(t, 2, n, o, func(env *sim.Env, db *DB) {
		s := db.NewSession()
		defer s.Close()
		for i := 0; i < n; i++ {
			if err := s.Put(key(i), key(i)); err != nil {
				t.Fatalf("Put: %v", err)
			}
		}
		db.Shard(1).Flush() // some flushed tables for the extent-clone phase
		for i := n / 2; i < n; i += 3 {
			if err := s.Put(key(i), []byte("tail")); err != nil { // and a WAL tail
				t.Fatalf("Put: %v", err)
			}
		}
		src := db.Shard(1)
		if err := db.MigrateShard(1, 0); err != nil {
			t.Fatalf("MigrateShard: %v", err)
		}
		if db.Shard(1) == src {
			t.Fatal("routing still points at the source engine")
		}
		for i := 0; i < n; i++ {
			want := key(i)
			if i >= n/2 && (i-n/2)%3 == 0 {
				want = []byte("tail")
			}
			v, err := s.Get(key(i))
			if err != nil || !bytes.Equal(v, want) {
				t.Fatalf("Get(%s) = %q, %v; want %q", key(i), v, err, want)
			}
		}
	})
}

func TestAutoBalanceSplitsHotShard(t *testing.T) {
	const n = 4000
	o := opts()
	o.AutoBalance = true
	o.BalanceInterval = time.Millisecond // the workload spans ~tens of virtual ms
	harness2(t, 1, n, o, func(env *sim.Env, db *DB) {
		s := db.NewSession()
		defer s.Close()
		r := rand.New(rand.NewSource(11))
		// A hot band: most traffic hits 10% of the keyspace.
		written := map[int]bool{}
		for j := 0; j < 20000; j++ {
			var i int
			if r.Intn(10) != 0 {
				i = n/2 + r.Intn(n/10)
			} else {
				i = r.Intn(n)
			}
			if err := s.Put(key(i), key(i)); err != nil {
				t.Fatalf("Put: %v", err)
			}
			written[i] = true
		}
		snap := db.TelemetrySnapshot()
		if snap.Counters["balance.splits"] == 0 {
			t.Fatalf("auto-balance never split: %v", snap.Counters)
		}
		if db.Lambda() < 2 {
			t.Fatalf("Lambda = %d after hot workload", db.Lambda())
		}
		// Per-shard keyed series appear once λ > 1.
		found := false
		for name := range snap.Counters {
			if len(name) > 5 && name[:5] == "shard" {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("no per-shard keyed counters in snapshot")
		}
		for i := range written {
			if v, err := s.Get(key(i)); err != nil || !bytes.Equal(v, key(i)) {
				t.Fatalf("Get(%s) = %q, %v", key(i), v, err)
			}
		}
	})
}

// FuzzRouteKey pins the routing algebra the online split relies on:
// routing a key then splitting the table routes the key to the same data
// as splitting first and routing after. Pure routing-table computation —
// no engines, no simulation.
func FuzzRouteKey(f *testing.F) {
	f.Add([]byte("key-5"), []byte("key-7"))
	f.Add([]byte(""), []byte("m"))
	f.Add([]byte("zz"), []byte("c"))
	f.Fuzz(func(t *testing.T, k, pivot []byte) {
		boundaries := [][]byte{[]byte("c"), []byte("m"), []byte("t")}
		rt := &routeTable{boundaries: boundaries, entries: make([]entry, 4)}
		for i := range rt.entries {
			rt.entries[i].id = i
		}
		before := rt.route(k)
		j := rt.route(pivot)
		lo, hi := rt.lo(j), rt.hi(j)
		if lo != nil && bytes.Compare(pivot, lo) <= 0 {
			t.Skip() // pivot not strictly inside its shard: split rejects it
		}
		if hi != nil && bytes.Compare(pivot, hi) >= 0 {
			t.Skip()
		}
		nb := make([][]byte, 0, len(boundaries)+1)
		nb = append(nb, boundaries[:j]...)
		nb = append(nb, pivot)
		nb = append(nb, boundaries[j:]...)
		nrt := &routeTable{boundaries: nb, entries: make([]entry, 5)}
		after := nrt.route(k)

		want := before
		if before > j || (before == j && bytes.Compare(k, pivot) >= 0) {
			want = before + 1
		}
		if after != want {
			t.Fatalf("route(%q): before=%d, after split at %q = %d, want %d",
				k, before, pivot, after, want)
		}
	})
}
