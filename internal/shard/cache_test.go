package shard

import (
	"testing"

	"dlsm/internal/memnode"
	"dlsm/internal/rdma"
	"dlsm/internal/sim"
)

// TestPerShardBudgetIsolation checks that shard.New splits one whole-node
// cache budget into λ independent per-shard caches: filling one shard's
// cache must not consume another shard's budget.
func TestPerShardBudgetIsolation(t *testing.T) {
	const n, lambda = 2000, 4
	const totalBudget = int64(4 << 20)

	env := sim.NewEnv()
	fab := rdma.NewFabric(env, rdma.EDR100())
	cn := fab.AddNode("compute", 24)
	mn := fab.AddNode("memory", 12)
	cfg := memnode.DefaultConfig()
	cfg.ComputeRegionSize = 128 << 20
	cfg.SelfRegionSize = 128 << 20
	srv := memnode.NewServer(mn, cfg)
	srv.Start()
	env.Run(func() {
		o := opts()
		o.CacheBudgetBytes = totalBudget
		db, err := New(cn, []*memnode.Server{srv}, lambda, UniformBoundaries(lambda, n, key), o)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		defer func() { db.Close(); fab.Close() }()

		for i := 0; i < lambda; i++ {
			c := db.Shard(i).Cache()
			if c == nil {
				t.Fatalf("shard %d has no cache", i)
			}
			if got := c.Budget(); got != totalBudget/lambda {
				t.Fatalf("shard %d budget = %d, want %d", i, got, totalBudget/lambda)
			}
		}

		s := db.NewSession()
		defer s.Close()
		for i := 0; i < n; i++ {
			if err := s.Put(key(i), key(i)); err != nil {
				t.Fatalf("Put: %v", err)
			}
		}
		db.Flush()
		db.WaitForCompactions()

		// Read only shard 0's slice of the key space (route splits at
		// n/lambda); only shard 0's cache may accumulate bytes.
		for pass := 0; pass < 2; pass++ {
			for i := 0; i < n/lambda; i++ {
				if _, err := s.Get(key(i)); err != nil {
					t.Fatalf("Get(%d): %v", i, err)
				}
			}
		}
		if used := db.Shard(0).Cache().Used(); used == 0 {
			t.Fatal("shard 0 cache unused after repeated reads of its slice")
		}
		for i := 1; i < lambda; i++ {
			if used := db.Shard(i).Cache().Used(); used != 0 {
				t.Fatalf("shard %d cache used %d bytes without being read", i, used)
			}
		}
	})
	env.Wait()
}
