package shard

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"dlsm/internal/engine"
	"dlsm/internal/memnode"
	"dlsm/internal/rdma"
	"dlsm/internal/sim"
)

func opts() engine.Options {
	o := engine.DLSM()
	o.MemTableSize = 32 << 10
	o.TableSize = 32 << 10
	o.L1MaxBytes = 128 << 10
	o.EntrySizeHint = 64
	o.FlushWorkers = 1
	o.CompactionWorkers = 2
	return o
}

func harness(t *testing.T, lambda int, n int, fn func(env *sim.Env, db *DB)) {
	t.Helper()
	env := sim.NewEnv()
	fab := rdma.NewFabric(env, rdma.EDR100())
	cn := fab.AddNode("compute", 24)
	mn := fab.AddNode("memory", 12)
	cfg := memnode.DefaultConfig()
	cfg.ComputeRegionSize = 128 << 20
	cfg.SelfRegionSize = 128 << 20
	srv := memnode.NewServer(mn, cfg)
	srv.Start()
	env.Run(func() {
		bounds := UniformBoundaries(lambda, n, key)
		db, err := New(cn, []*memnode.Server{srv}, lambda, bounds, opts())
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		fn(env, db)
		db.Close()
		fab.Close()
	})
	env.Wait()
}

func key(i int) []byte { return []byte(fmt.Sprintf("key-%08d", i)) }

func TestRoutingCoversBoundaries(t *testing.T) {
	const n, lambda = 1000, 4
	harness(t, lambda, n, func(env *sim.Env, db *DB) {
		// Boundary keys land in the shard to their right ([lo, hi)).
		for i, want := range map[int]int{0: 0, 249: 0, 250: 1, 499: 1, 500: 2, 750: 3, 999: 3} {
			if got := db.route(key(i)); got != want {
				t.Fatalf("route(%s) = %d, want %d", key(i), got, want)
			}
		}
	})
}

func TestWritesSpreadAcrossShards(t *testing.T) {
	const n, lambda = 2000, 8
	harness(t, lambda, n, func(env *sim.Env, db *DB) {
		s := db.NewSession()
		defer s.Close()
		for _, i := range rand.New(rand.NewSource(1)).Perm(n) {
			s.Put(key(i), key(i))
		}
		for i := 0; i < lambda; i++ {
			if got := db.Shard(i).Stats().Writes.Load(); got == 0 {
				t.Fatalf("shard %d got no writes", i)
			}
		}
		for i := 0; i < n; i += 19 {
			v, err := s.Get(key(i))
			if err != nil || string(v) != string(key(i)) {
				t.Fatalf("Get(%s) = %q, %v", key(i), v, err)
			}
		}
	})
}

func TestCrossShardIteratorGlobalOrder(t *testing.T) {
	const n, lambda = 1500, 4
	harness(t, lambda, n, func(env *sim.Env, db *DB) {
		s := db.NewSession()
		defer s.Close()
		for _, i := range rand.New(rand.NewSource(2)).Perm(n) {
			s.Put(key(i), key(i))
		}
		it := s.NewIterator()
		defer it.Close()
		count := 0
		for it.First(); it.Valid(); it.Next() {
			if string(it.Key()) != string(key(count)) {
				t.Fatalf("scan[%d] = %q, want %q", count, it.Key(), key(count))
			}
			count++
		}
		if count != n {
			t.Fatalf("scanned %d, want %d", count, n)
		}
	})
}

func TestIteratorSeekAcrossShardBoundary(t *testing.T) {
	const n, lambda = 1000, 4
	harness(t, lambda, n, func(env *sim.Env, db *DB) {
		s := db.NewSession()
		defer s.Close()
		for i := 0; i < n; i++ {
			s.Put(key(i), key(i))
		}
		it := s.NewIterator()
		defer it.Close()
		// Seek exactly to a boundary (key 250 starts shard 1) and just
		// before it.
		it.SeekGE(key(250))
		if !it.Valid() || string(it.Key()) != string(key(250)) {
			t.Fatalf("SeekGE(boundary) = %q", it.Key())
		}
		it.SeekGE(key(249))
		if !it.Valid() || string(it.Key()) != string(key(249)) {
			t.Fatalf("SeekGE(249) = %q", it.Key())
		}
		// Crossing from shard 0 into shard 1 mid-iteration.
		it.SeekGE(key(248))
		for i := 248; i <= 252; i++ {
			if !it.Valid() || string(it.Key()) != string(key(i)) {
				t.Fatalf("cross-boundary scan at %d = %q", i, it.Key())
			}
			it.Next()
		}
	})
}

func TestDeleteThroughShards(t *testing.T) {
	harness(t, 4, 1000, func(env *sim.Env, db *DB) {
		s := db.NewSession()
		defer s.Close()
		s.Put(key(600), []byte("v"))
		s.Delete(key(600))
		if _, err := s.Get(key(600)); err != engine.ErrNotFound {
			t.Fatalf("deleted key: %v", err)
		}
	})
}

func TestLambdaOnePassthrough(t *testing.T) {
	harness(t, 1, 100, func(env *sim.Env, db *DB) {
		if db.Lambda() != 1 {
			t.Fatalf("Lambda = %d", db.Lambda())
		}
		s := db.NewSession()
		defer s.Close()
		s.Put([]byte("zzz-beyond-range"), []byte("v")) // no boundaries: all keys route to shard 0
		if v, err := s.Get([]byte("zzz-beyond-range")); err != nil || string(v) != "v" {
			t.Fatalf("Get = %q, %v", v, err)
		}
	})
}

func TestBadBoundariesError(t *testing.T) {
	env := sim.NewEnv()
	fab := rdma.NewFabric(env, rdma.EDR100())
	cn := fab.AddNode("compute", 24)
	mn := fab.AddNode("memory", 12)
	srv := memnode.NewServer(mn, memnode.DefaultConfig())
	srv.Start()
	env.Run(func() {
		defer fab.Close()
		if _, err := New(cn, []*memnode.Server{srv}, 3, [][]byte{[]byte("b"), []byte("a")}, opts()); !errors.Is(err, ErrBadBoundaries) {
			t.Errorf("descending boundaries: err = %v, want ErrBadBoundaries", err)
		}
		if _, err := New(cn, []*memnode.Server{srv}, 3, [][]byte{[]byte("a")}, opts()); !errors.Is(err, ErrBadBoundaries) {
			t.Errorf("wrong boundary count: err = %v, want ErrBadBoundaries", err)
		}
	})
	env.Wait()
}
