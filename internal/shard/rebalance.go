package shard

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"dlsm/internal/balance"
	"dlsm/internal/engine"
	"dlsm/internal/keys"
	"dlsm/internal/telemetry"
	"dlsm/internal/wal"
)

// Errors returned by the online topology operations.
var (
	// ErrNoSuchShard reports a shard id absent from the routing table.
	ErrNoSuchShard = errors.New("shard: no such shard")
	// ErrBadPivot reports a split pivot outside the shard's open interval.
	ErrBadPivot = errors.New("shard: split pivot outside shard range")
	// ErrSecondary reports a topology operation on a read-only secondary.
	ErrSecondary = errors.New("shard: read-only secondary cannot rebalance")
	// ErrNoPivot reports a split with no usable load-weighted pivot yet.
	ErrNoPivot = errors.New("shard: no load samples to derive a split pivot")
)

// ---------------------------------------------------------------------------
// Key sampling
//
// The rebalancer needs a load-weighted pivot to split a hot shard: the
// median of recently accessed keys divides the shard's *traffic* in half,
// where the midpoint of its boundaries would only divide its keyspace.
// Each entry carries a sampler fed (subsampled) from the routed read and
// write paths. Host-side state under a host mutex: zero virtual time, no
// simulation entity interaction.

const (
	samplerEvery = 16  // keep every 16th offered key
	samplerSize  = 128 // ring capacity
)

// keySampler is a reservoir of recently routed keys. All methods are
// nil-safe so the data path can call offer unconditionally.
type keySampler struct {
	mu   sync.Mutex
	n    uint64
	ring [][]byte
	next int
}

func newKeySampler() *keySampler { return &keySampler{} }

// offer records every samplerEvery-th key.
func (ks *keySampler) offer(key []byte) {
	if ks == nil {
		return
	}
	ks.mu.Lock()
	ks.n++
	if ks.n%samplerEvery == 0 {
		k := append([]byte(nil), key...)
		if len(ks.ring) < samplerSize {
			ks.ring = append(ks.ring, k)
		} else {
			ks.ring[ks.next] = k
			ks.next = (ks.next + 1) % samplerSize
		}
	}
	ks.mu.Unlock()
}

// pivot returns the median sampled key strictly inside (lo, hi), or nil
// when no sample qualifies. Strictness matters: a boundary equal to lo
// would leave the left half empty and the boundary list non-ascending.
func (ks *keySampler) pivot(lo, hi []byte) []byte {
	if ks == nil {
		return nil
	}
	ks.mu.Lock()
	var in [][]byte
	for _, k := range ks.ring {
		if lo != nil && bytes.Compare(k, lo) <= 0 {
			continue
		}
		if hi != nil && bytes.Compare(k, hi) >= 0 {
			continue
		}
		in = append(in, k)
	}
	ks.mu.Unlock()
	if len(in) == 0 {
		return nil
	}
	sort.Slice(in, func(i, j int) bool { return bytes.Compare(in[i], in[j]) < 0 })
	return append([]byte(nil), in[len(in)/2]...)
}

// ---------------------------------------------------------------------------
// Cut-over protocol
//
// Every topology change moves the writes of one key range from a source
// engine to a destination without losing an acknowledged write:
//
//  1. Bulk copy. With writers still running, copy the range's live keys at
//     snapshot s0 (split/merge and the migrate fallback iterate; migrate's
//     fast path clones SSTable extents server→server via repl_clone).
//  2. Gate. Publish the same routing table with a write gate over the
//     range at epoch g: new writes to the range park on gateCond.
//  3. Drain. Wait until no session is mid-write under an epoch < g (each
//     session publishes its routing epoch in Session.inflight before
//     writing and re-checks the table pointer after — so every write
//     either observes the gate or is observed by this drain).
//  4. Fence. src.FenceNow() burns the source's sequence range at s1: all
//     acknowledged writes are ≤ s1 and any later source write would be
//     > s1 (there are none — the gate holds them, and after the flip
//     nothing routes there).
//  5. Delta. Copy exactly the keys that changed in (s0, s1] — tombstones
//     included, so deletions travel too. The migrate fast path instead
//     diff-clones new tables and replays the WAL tail above the flushed
//     horizon.
//  6. Flip. Publish the final table (epoch g+1) and broadcast the gate
//     open. Parked writers re-route through the new table.
//
// Reads never park: until the flip they route to the source, which stays
// complete for the range up to the fence. The union of bulk copy and
// delta holds every acknowledged write by construction — the same
// burned-sequence argument the WAL's flush/sizeSwitch fencing makes.

// publish atomically swaps the routing table and wakes gate-parked
// writers. The store happens under gateMu so a writer that checked the
// table and decided to park cannot miss the broadcast.
func (db *DB) publish(rt *routeTable) {
	db.gateMu.Lock()
	db.routing.Store(rt)
	db.gateCond.Broadcast()
	db.gateMu.Unlock()
}

// installGate republishes the current table with a write gate over
// [lo, hi) and returns the gated epoch.
func (db *DB) installGate(lo, hi []byte) uint64 {
	rt := db.routing.Load()
	g := &routeTable{
		epoch:      rt.epoch + 1,
		boundaries: rt.boundaries,
		entries:    rt.entries,
		gated:      true,
		gateLo:     lo,
		gateHi:     hi,
	}
	db.publish(g)
	return g.epoch
}

// ungate republishes the current table without its gate (failure paths).
func (db *DB) ungate() {
	rt := db.routing.Load()
	db.publish(&routeTable{epoch: rt.epoch + 1, boundaries: rt.boundaries, entries: rt.entries})
}

// drainBelow blocks until no session is mid-write under a routing epoch
// older than epoch. Writes under the gated epoch to un-gated ranges keep
// flowing; only stragglers that routed before the gate are awaited.
func (db *DB) drainBelow(epoch uint64) {
	for {
		busy := false
		db.sessMu.Lock()
		for s := range db.sessions {
			if v := s.inflight.Load(); v != 0 && v < epoch {
				busy = true
				break
			}
		}
		db.sessMu.Unlock()
		if !busy {
			return
		}
		db.env.Sleep(10 * time.Microsecond)
	}
}

// copyRange copies [lo, hi) from src to dst at snapshot snap, skipping
// keys whose newest version is ≤ minSeq. With tombstones set, deletions
// in (minSeq, snap] are forwarded as dst deletes — a delta copy must move
// the absences, not just the values.
func copyRange(src, dst *engine.DB, lo, hi []byte, snap, minSeq keys.Seq, tombstones bool) error {
	ss := src.NewSession()
	defer ss.Close()
	ds := dst.NewSession()
	defer ds.Close()
	it := ss.NewIteratorOpts(engine.ReadOptions{
		Snapshot:          snap,
		MinSeq:            minSeq,
		IncludeTombstones: tombstones,
	})
	defer it.Close()
	if lo == nil {
		it.First()
	} else {
		it.SeekGE(lo)
	}
	for ; it.Valid(); it.Next() {
		if hi != nil && bytes.Compare(it.Key(), hi) >= 0 {
			break
		}
		var err error
		if it.IsTombstone() {
			err = ds.Delete(it.Key())
		} else {
			err = ds.Put(it.Key(), it.Value())
		}
		if err != nil {
			return err
		}
	}
	return it.Error()
}

// purgeRange tombstones every key dst's engine currently holds in
// [lo, hi). A merge runs it on the absorbing engine first: if that engine
// once owned the range (a split that is now being undone), it still holds
// the moved keys as garbage below its clamped boundary, and copying the
// donor's live set over the garbage would resurrect anything the donor
// deleted in between. Purging first makes the absorbed range exactly the
// donor's live set.
func purgeRange(eng *engine.DB, lo, hi []byte) error {
	s := eng.NewSession()
	defer s.Close()
	it := s.NewIteratorOpts(engine.ReadOptions{})
	defer it.Close()
	if lo == nil {
		it.First()
	} else {
		it.SeekGE(lo)
	}
	for ; it.Valid(); it.Next() {
		if hi != nil && bytes.Compare(it.Key(), hi) >= 0 {
			break
		}
		if err := s.Delete(it.Key()); err != nil {
			return err
		}
	}
	return it.Error()
}

// openShard opens a fresh engine on servers[srv] under a newly allotted
// shard id (its WAL slot id). On a leased DB the shard's write lease is
// claimed first and wired into the engine's commit fence, exactly as
// NewPrimary does for the initial shards. Caller holds rebalMu.
func (db *DB) openShard(srv int) (entry, error) {
	id := db.nextID
	db.nextID++
	opts := db.baseOpts
	opts.WALShard = id
	if db.leased {
		hold, err := claimShard(db.cn, db.servers[srv], opts.Replica, opts.WALOwner, id, db.holder, false)
		if err != nil {
			return entry{}, fmt.Errorf("shard %d lease: %w", id, err)
		}
		db.leases[id] = hold
		opts.WALFence = hold.client.Addr()
		opts.WALFenceWord = hold.l.Word()
	}
	e := entry{eng: engine.Open(db.cn, db.servers[srv], opts), id: id, srv: srv}
	if db.baseOpts.AutoBalance {
		e.sampler = newKeySampler()
	}
	return e, nil
}

// abandonShard closes a fresh shard that never entered the routing table
// (failure paths) and hands back its lease.
func (db *DB) abandonShard(e entry) {
	e.eng.Close()
	if h, ok := db.leases[e.id]; ok {
		_ = h.client.Release(h.l)
		h.client.Close()
		delete(db.leases, e.id)
	}
}

// retire moves an engine the routing table no longer references to the
// graveyard. It stays open until DB.Close — sessions may still hold
// iterators pinned to an older table — and its lease stays held (its WAL
// slot still carries our data; releasing it would let another primary
// claim the slot).
func (db *DB) retire(e entry) {
	db.retMu.Lock()
	db.retired = append(db.retired, e.eng)
	db.retMu.Unlock()
}

// Route returns the position of the shard owning key. Positions shift as
// the geometry changes; ShardID converts a position to the stable id the
// topology operations take.
func (db *DB) Route(key []byte) int { return db.route(key) }

// ShardID returns the stable id of the shard currently at position i.
func (db *DB) ShardID(i int) int { return db.routing.Load().entries[i].id }

// MergeAt folds the two shards meeting at boundary into one; boundary
// must be one of the current Boundaries().
func (db *DB) MergeAt(boundary []byte) error {
	rt := db.routing.Load()
	for i, b := range rt.boundaries {
		if bytes.Equal(b, boundary) {
			return db.MergeShard(rt.entries[i].id)
		}
	}
	return fmt.Errorf("shard: %q is not a current shard boundary", boundary)
}

// SplitShard divides the identified shard at a load-weighted pivot — the
// median of its recently sampled keys (AutoBalance samplers). Without
// samples it fails with ErrNoPivot; use SplitShardAt to supply a pivot.
func (db *DB) SplitShard(id int) error {
	rt := db.routing.Load()
	idx := rt.indexOf(id)
	if idx < 0 {
		return fmt.Errorf("%w: %d", ErrNoSuchShard, id)
	}
	pivot := rt.entries[idx].sampler.pivot(rt.lo(idx), rt.hi(idx))
	if pivot == nil {
		return fmt.Errorf("%w (shard %d)", ErrNoPivot, id)
	}
	return db.SplitShardAt(id, pivot)
}

// SplitShardAt splits the identified shard into [lo, pivot) and
// [pivot, hi), the right half served by a fresh engine on the same memory
// node. Writers to [pivot, hi) pause only for the drain+fence+delta
// window; everything else keeps going throughout.
func (db *DB) SplitShardAt(id int, pivot []byte) error {
	if db.secondary {
		return ErrSecondary
	}
	db.rebalMu.Lock()
	defer db.rebalMu.Unlock()

	rt0 := db.routing.Load()
	idx := rt0.indexOf(id)
	if idx < 0 {
		return fmt.Errorf("%w: %d", ErrNoSuchShard, id)
	}
	lo, hi := rt0.lo(idx), rt0.hi(idx)
	if pivot == nil ||
		(lo != nil && bytes.Compare(pivot, lo) <= 0) ||
		(hi != nil && bytes.Compare(pivot, hi) >= 0) {
		return fmt.Errorf("%w (shard %d)", ErrBadPivot, id)
	}
	src := rt0.entries[idx]

	dst, err := db.openShard(src.srv)
	if err != nil {
		return err
	}
	s0 := src.eng.CurrentSeq()
	if err := copyRange(src.eng, dst.eng, pivot, hi, s0, 0, false); err != nil {
		db.abandonShard(dst)
		return fmt.Errorf("shard: split bulk copy: %w", err)
	}

	gateEpoch := db.installGate(pivot, hi)
	db.drainBelow(gateEpoch)
	fence := src.eng.FenceNow()
	if err := copyRange(src.eng, dst.eng, pivot, hi, fence, s0, true); err != nil {
		db.ungate()
		db.abandonShard(dst)
		return fmt.Errorf("shard: split delta copy: %w", err)
	}

	cur := db.routing.Load()
	boundaries := make([][]byte, 0, len(cur.boundaries)+1)
	boundaries = append(boundaries, cur.boundaries[:idx]...)
	boundaries = append(boundaries, pivot)
	boundaries = append(boundaries, cur.boundaries[idx:]...)
	entries := make([]entry, 0, len(cur.entries)+1)
	entries = append(entries, cur.entries[:idx+1]...)
	entries = append(entries, dst)
	entries = append(entries, cur.entries[idx+1:]...)
	db.publish(&routeTable{epoch: cur.epoch + 1, boundaries: boundaries, entries: entries})
	return nil
}

// MergeShard folds the right neighbor of the identified shard into it:
// the right's live keys are copied into the left engine and the boundary
// between them disappears. The right engine is retired (closed with the
// DB), so its on-node space is reclaimed only at Close.
func (db *DB) MergeShard(leftID int) error {
	if db.secondary {
		return ErrSecondary
	}
	db.rebalMu.Lock()
	defer db.rebalMu.Unlock()

	rt0 := db.routing.Load()
	idx := rt0.indexOf(leftID)
	if idx < 0 {
		return fmt.Errorf("%w: %d", ErrNoSuchShard, leftID)
	}
	if idx+1 >= len(rt0.entries) {
		return fmt.Errorf("%w: shard %d has no right neighbor", ErrNoSuchShard, leftID)
	}
	left, right := rt0.entries[idx], rt0.entries[idx+1]
	boundary, hi := rt0.boundaries[idx], rt0.hi(idx+1)

	if err := purgeRange(left.eng, boundary, hi); err != nil {
		return fmt.Errorf("shard: merge purge: %w", err)
	}
	s0 := right.eng.CurrentSeq()
	if err := copyRange(right.eng, left.eng, boundary, hi, s0, 0, false); err != nil {
		return fmt.Errorf("shard: merge bulk copy: %w", err)
	}

	gateEpoch := db.installGate(boundary, hi)
	db.drainBelow(gateEpoch)
	fence := right.eng.FenceNow()
	if err := copyRange(right.eng, left.eng, boundary, hi, fence, s0, true); err != nil {
		db.ungate()
		return fmt.Errorf("shard: merge delta copy: %w", err)
	}

	cur := db.routing.Load()
	boundaries := make([][]byte, 0, len(cur.boundaries)-1)
	boundaries = append(boundaries, cur.boundaries[:idx]...)
	boundaries = append(boundaries, cur.boundaries[idx+1:]...)
	entries := make([]entry, 0, len(cur.entries)-1)
	entries = append(entries, cur.entries[:idx+1]...)
	entries = append(entries, cur.entries[idx+2:]...)
	db.publish(&routeTable{epoch: cur.epoch + 1, boundaries: boundaries, entries: entries})
	db.retire(right)
	return nil
}

// MigrateShard moves the identified shard's data to the memory node at
// index srv, behind a fresh engine (and WAL slot) there. When source and
// destination both run the native transport with durability, the bulk of
// the move is engine.Migration's server→server extent cloning plus a WAL
// tail replay; otherwise the iterator copy path used by split does the
// work. Either way the fence makes the hand-off lossless.
func (db *DB) MigrateShard(id int, srv int) error {
	if db.secondary {
		return ErrSecondary
	}
	if srv < 0 || srv >= len(db.servers) {
		return fmt.Errorf("shard: no such server %d", srv)
	}
	db.rebalMu.Lock()
	defer db.rebalMu.Unlock()

	rt0 := db.routing.Load()
	idx := rt0.indexOf(id)
	if idx < 0 {
		return fmt.Errorf("%w: %d", ErrNoSuchShard, id)
	}
	src := rt0.entries[idx]
	if src.srv == srv {
		return nil
	}
	lo, hi := rt0.lo(idx), rt0.hi(idx)

	dst, err := db.openShard(srv)
	if err != nil {
		return err
	}

	if m := engine.StartMigration(src.eng, dst.eng); m != nil {
		err = db.migrateClone(m, src, dst, lo, hi)
	} else {
		err = db.migrateCopy(src, dst, lo, hi)
	}
	if err != nil {
		db.abandonShard(dst)
		return err
	}

	cur := db.routing.Load()
	entries := append([]entry(nil), cur.entries...)
	entries[idx] = dst
	db.publish(&routeTable{epoch: cur.epoch + 1, boundaries: cur.boundaries, entries: entries})
	db.retire(src)
	return nil
}

// migrateClone is the extent-cloning fast path: phase A clones live
// tables with writers running; under the gate the fence is taken, the
// table set diff-cloned and installed on the destination, and the WAL
// tail above the flushed horizon replayed there.
func (db *DB) migrateClone(m *engine.Migration, src, dst entry, lo, hi []byte) error {
	if err := m.CloneLive(); err != nil {
		m.Abort()
		return fmt.Errorf("shard: migrate clone: %w", err)
	}
	gateEpoch := db.installGate(lo, hi)
	db.drainBelow(gateEpoch)
	fence := src.eng.FenceNow()
	tail, err := m.Finish(fence)
	if err != nil {
		db.ungate()
		m.Abort()
		return fmt.Errorf("shard: migrate finish: %w", err)
	}
	ds := dst.eng.NewSession()
	defer ds.Close()
	for _, e := range wal.FilterRange(tail, lo, hi) {
		if keys.Kind(e.Kind) == keys.KindDelete {
			err = ds.Delete(e.Key)
		} else {
			err = ds.Put(e.Key, e.Value)
		}
		if err != nil {
			db.ungate()
			m.Abort()
			return fmt.Errorf("shard: migrate tail replay: %w", err)
		}
	}
	m.Close()
	return nil
}

// migrateCopy is the iterator fallback (no WAL, or a non-native
// transport): the same bulk+delta shape split uses, over the full range.
func (db *DB) migrateCopy(src, dst entry, lo, hi []byte) error {
	s0 := src.eng.CurrentSeq()
	if err := copyRange(src.eng, dst.eng, lo, hi, s0, 0, false); err != nil {
		return fmt.Errorf("shard: migrate bulk copy: %w", err)
	}
	gateEpoch := db.installGate(lo, hi)
	db.drainBelow(gateEpoch)
	fence := src.eng.FenceNow()
	if err := copyRange(src.eng, dst.eng, lo, hi, fence, s0, true); err != nil {
		db.ungate()
		return fmt.Errorf("shard: migrate delta copy: %w", err)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Balancer wiring

// balTarget adapts DB to balance.Target.
type balTarget struct{ db *DB }

func (t balTarget) Shards() []balance.Shard {
	rt := t.db.routing.Load()
	out := make([]balance.Shard, len(rt.entries))
	for i, e := range rt.entries {
		s := e.eng.Telemetry().Snapshot()
		out[i] = balance.Shard{
			ID:       e.id,
			Server:   e.srv,
			Ops:      s.Counters["engine.writes"] + s.Counters["engine.reads"],
			Stalls:   s.Counters["engine.stalls"],
			CanSplit: e.sampler.pivot(rt.lo(i), rt.hi(i)) != nil,
		}
	}
	return out
}

func (t balTarget) Servers() int            { return len(t.db.servers) }
func (t balTarget) Split(id int) error      { return t.db.SplitShard(id) }
func (t balTarget) Merge(leftID int) error  { return t.db.MergeShard(leftID) }
func (t balTarget) Migrate(id, s int) error { return t.db.MigrateShard(id, s) }

// startBalancer launches the balance loop with its own telemetry registry
// (merged into TelemetrySnapshot), honoring Options.BalanceInterval.
func (db *DB) startBalancer() {
	env := db.env
	db.balReg = telemetry.NewRegistry(telemetry.ClockFunc(func() int64 { return int64(env.Now()) }))
	db.bal = balance.New(env, balTarget{db}, balance.Config{Interval: db.baseOpts.BalanceInterval}, db.balReg)
}
