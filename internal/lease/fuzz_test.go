package lease_test

import (
	"bytes"
	"testing"

	"dlsm/internal/lease"
)

// FuzzDecodeEntry asserts DecodeEntry is total on arbitrary bytes —
// including bit-flipped valid entries — and that anything it accepts
// survives an encode/decode round trip bit-stably (so a corrupt
// ownership-table read can never panic a compute node or alias a
// different (epoch, holder) state).
func FuzzDecodeEntry(f *testing.F) {
	f.Add([]byte(nil))
	f.Add(lease.EncodeEntry(lease.Entry{}))
	f.Add(lease.EncodeEntry(lease.Entry{Epoch: 1, Holder: 0, Held: true}))
	f.Add(lease.EncodeEntry(lease.Entry{Epoch: 1<<48 - 1, Holder: 0xFFFE, Held: true}))
	f.Add(lease.EncodeEntry(lease.Entry{Epoch: 42}))
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := lease.DecodeEntry(data)
		if err != nil {
			return
		}
		enc := lease.EncodeEntry(e)
		e2, err := lease.DecodeEntry(enc)
		if err != nil {
			t.Fatalf("re-encoded entry fails to decode: %v", err)
		}
		if e2 != e {
			t.Fatalf("entry changed across round trip: %+v != %+v", e2, e)
		}
		if !bytes.Equal(lease.EncodeEntry(e2), enc) {
			t.Fatal("entry encoding is not stable across decode/encode")
		}
	})
}
