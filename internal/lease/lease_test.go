package lease_test

import (
	"errors"
	"testing"

	"dlsm/internal/lease"
	"dlsm/internal/memnode"
	"dlsm/internal/rdma"
	"dlsm/internal/sim"
)

func TestPackUnpackRoundTrip(t *testing.T) {
	cases := []struct {
		epoch  uint64
		holder int
		held   bool
	}{
		{0, 0, false},
		{0, 0, true},
		{1, 0, true},
		{1, 0xFFFE, true},
		{1<<48 - 1, 3, true},
		{42, 0, false},
	}
	for _, c := range cases {
		w := lease.Pack(c.epoch, c.holder, c.held)
		epoch, holder, held := lease.Unpack(w)
		if epoch != c.epoch || held != c.held || (held && holder != c.holder) {
			t.Fatalf("Pack(%d,%d,%v) -> Unpack = (%d,%d,%v)",
				c.epoch, c.holder, c.held, epoch, holder, held)
		}
	}
	// The free word of any epoch must never collide with a held word.
	if lease.Pack(7, 0, false) == lease.Pack(7, 0, true) {
		t.Fatal("free and held-by-0 words collide")
	}
}

func TestDecodeEntryHardened(t *testing.T) {
	valid := lease.EncodeEntry(lease.Entry{Epoch: 9, Holder: 2, Held: true})
	e, err := lease.DecodeEntry(valid)
	if err != nil || e.Epoch != 9 || e.Holder != 2 || !e.Held {
		t.Fatalf("valid entry: %+v err=%v", e, err)
	}
	for cut := 0; cut < 16; cut++ {
		if _, err := lease.DecodeEntry(valid[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", cut)
		}
	}
	badMagic := append([]byte(nil), valid...)
	badMagic[8] ^= 0xFF
	if _, err := lease.DecodeEntry(badMagic); err == nil {
		t.Fatal("bad magic decoded successfully")
	}
	badVer := append([]byte(nil), valid...)
	badVer[12] = 0xEE
	if _, err := lease.DecodeEntry(badVer); err == nil {
		t.Fatal("bad version decoded successfully")
	}
	dirty := append([]byte(nil), valid...)
	dirty[40] = 1
	if _, err := lease.DecodeEntry(dirty); err == nil {
		t.Fatal("nonzero reserved byte decoded successfully")
	}
}

func TestSlotKeyDistinct(t *testing.T) {
	seen := map[uint64]bool{}
	for owner := 0; owner < 4; owner++ {
		for shard := 0; shard < 8; shard++ {
			k := lease.SlotKey(owner, shard)
			if k == 0 || seen[k] {
				t.Fatalf("SlotKey(%d,%d) = %#x collides or is zero", owner, shard, k)
			}
			seen[k] = true
		}
	}
}

// leasebed is a one-memory-node fabric with two compute nodes.
func leasebed() (*sim.Env, *rdma.Fabric, *rdma.Node, *rdma.Node, *memnode.Server) {
	env := sim.NewEnv()
	fab := rdma.NewFabric(env, rdma.EDR100())
	cn1 := fab.AddNode("compute1", 8)
	cn2 := fab.AddNode("compute2", 8)
	mn := fab.AddNode("memory", 12)
	cfg := memnode.DefaultConfig()
	cfg.ComputeRegionSize = 1 << 20
	cfg.SelfRegionSize = 1 << 20
	srv := memnode.NewServer(mn, cfg)
	srv.Start()
	return env, fab, cn1, cn2, srv
}

func TestAcquireConflictTakeoverRelease(t *testing.T) {
	env, fab, cn1, cn2, srv := leasebed()
	env.Run(func() {
		defer fab.Close()
		slot, err := srv.OpenLease(lease.SlotKey(0, 0))
		if err != nil {
			t.Fatal(err)
		}
		// OpenLease is create-or-return: a second open (a replacement
		// compute looking up a dead one's lease) finds the same entry.
		again, err := srv.OpenLease(lease.SlotKey(0, 0))
		if err != nil || again.Addr != slot.Addr {
			t.Fatalf("reopen: %+v vs %+v (err=%v)", again, slot, err)
		}

		c1 := lease.NewClient(cn1, srv.Node(), slot.Addr, 0)
		defer c1.Close()
		c2 := lease.NewClient(cn2, srv.Node(), slot.Addr, 1)
		defer c2.Close()

		l1, err := c1.Acquire()
		if err != nil {
			t.Fatal(err)
		}
		if l1.Epoch != 1 || l1.Holder != 0 {
			t.Fatalf("first acquire: %+v", l1)
		}

		// A different compute node must be refused...
		if _, err := c2.Acquire(); !errors.Is(err, lease.ErrHeld) {
			t.Fatalf("conflicting acquire: %v", err)
		}
		// ...but can depose the holder, bumping the epoch.
		l2, err := c2.Takeover()
		if err != nil {
			t.Fatal(err)
		}
		if l2.Epoch != l1.Epoch+1 || l2.Holder != 1 {
			t.Fatalf("takeover: %+v", l2)
		}

		// The deposed holder's release must fail and leave the entry alone.
		if err := c1.Release(l1); !errors.Is(err, lease.ErrNotHeld) {
			t.Fatalf("deposed release: %v", err)
		}
		e, err := c2.Observe()
		if err != nil || !e.Held || e.Holder != 1 || e.Epoch != l2.Epoch {
			t.Fatalf("entry after deposed release: %+v err=%v", e, err)
		}

		// A clean release keeps the epoch, so the next acquirer still bumps
		// past every word ever used as a WAL fence.
		if err := c2.Release(l2); err != nil {
			t.Fatal(err)
		}
		l3, err := c1.Acquire()
		if err != nil {
			t.Fatal(err)
		}
		if l3.Epoch != l2.Epoch+1 {
			t.Fatalf("epoch rewound across release: %+v after %+v", l3, l2)
		}
	})
	env.Wait()
}

func TestReacquireBumpsEpoch(t *testing.T) {
	env, fab, cn1, _, srv := leasebed()
	env.Run(func() {
		defer fab.Close()
		slot, err := srv.OpenLease(lease.SlotKey(3, 1))
		if err != nil {
			t.Fatal(err)
		}
		c := lease.NewClient(cn1, srv.Node(), slot.Addr, 5)
		defer c.Close()
		l1, err := c.Acquire()
		if err != nil {
			t.Fatal(err)
		}
		// Re-acquiring one's own lease fences the forgotten older handle.
		l2, err := c.Acquire()
		if err != nil {
			t.Fatal(err)
		}
		if l2.Epoch != l1.Epoch+1 || l2.Word() == l1.Word() {
			t.Fatalf("re-acquire: %+v after %+v", l2, l1)
		}
		if err := c.Release(l1); !errors.Is(err, lease.ErrNotHeld) {
			t.Fatalf("stale handle release: %v", err)
		}
		if err := c.Release(l2); err != nil {
			t.Fatal(err)
		}
	})
	env.Wait()
}
