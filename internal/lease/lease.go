// Package lease implements per-shard write-ownership for multi-compute
// scale-out: a small ownership table in memory-node DRAM (one 64-byte
// entry per shard, carved out by memnode.OpenLease) that compute nodes
// read and CAS with one-sided RDMA — the same slot-header pattern as the
// remote write-ahead log, so ownership changes survive any compute-node
// crash and cost the memory node zero CPU.
//
// Exactly one compute node holds the write lease of a shard at a time.
// Every acquisition — voluntary or takeover — bumps the entry's epoch, and
// the holder wires the packed (epoch, holder) word into its WAL as a fence
// (wal.Config.Fence/FenceWord): each commit group is acknowledged only
// after a CAS verifies the word is unchanged, so the instant a new owner
// takes over, a deposed owner's in-flight appends stop acknowledging with
// wal.ErrFenced. Combined with the WAL's ring-epoch + LSN fencing, a
// takeover therefore observes every write the old owner ever acknowledged.
//
// # Entry layout (64 bytes)
//
//	off  0: word u64     — epoch<<16 | (holder+1); low 16 bits 0 = free
//	off  8: magic u32    — "dLSE"
//	off 12: version u32
//	off 16: reserved     — zero
//
// Only the word at offset 0 is ever CAS'd; magic and version are stamped
// once by the memory node when the entry is created.
package lease

import (
	"encoding/binary"
	"errors"
	"fmt"

	"dlsm/internal/rdma"
	"dlsm/internal/sim"
	"dlsm/internal/telemetry"
)

const (
	// Magic identifies an initialized lease entry ("dLSE").
	Magic = 0x644c5345
	// Version is the entry format version.
	Version = 1
	// EntrySize is the fixed entry length.
	EntrySize = 64

	// maxHolder bounds the holder id to the word's 16 low bits (minus the
	// +1 bias that distinguishes holder 0 from "free").
	maxHolder = 0xFFFE
	// maxEpoch bounds the epoch to the word's 48 high bits.
	maxEpoch = 1<<48 - 1
)

// ErrHeld is returned by Acquire when another compute node holds the lease.
var ErrHeld = errors.New("lease: held by another compute node")

// ErrNotHeld is returned by Release when the caller no longer holds the
// lease (a takeover deposed it); the lease word was left untouched.
var ErrNotHeld = errors.New("lease: not held (deposed by takeover)")

// SlotKey names the lease entry of (owner, shard) in the memory node's
// lease table — the same identity scheme as the WAL's log slots, salted
// differently so the two tables never collide.
func SlotKey(owner, shard int) uint64 {
	return sim.Mix64(0x1EA5E0D, uint64(owner), uint64(shard)) | 1
}

// Lease is proof of ownership at one epoch. Its packed Word is the WAL
// fence: while the remote entry still holds it, the holder's appends ack.
type Lease struct {
	Epoch  uint64
	Holder int
}

// Pack builds the CAS word: epoch in the high 48 bits, holder+1 in the
// low 16 (0 = free). held=false ignores holder and leaves the low bits 0.
func Pack(epoch uint64, holder int, held bool) uint64 {
	if epoch > maxEpoch {
		panic("lease: epoch overflow")
	}
	w := epoch << 16
	if held {
		if holder < 0 || holder > maxHolder {
			panic(fmt.Sprintf("lease: holder %d out of range", holder))
		}
		w |= uint64(holder) + 1
	}
	return w
}

// Unpack splits a CAS word into (epoch, holder, held).
func Unpack(w uint64) (epoch uint64, holder int, held bool) {
	epoch = w >> 16
	if low := w & 0xFFFF; low != 0 {
		return epoch, int(low - 1), true
	}
	return epoch, 0, false
}

// Word returns the lease's packed CAS word (the WAL fence value).
func (l Lease) Word() uint64 { return Pack(l.Epoch, l.Holder, true) }

// Entry is one decoded ownership-table entry.
type Entry struct {
	Epoch  uint64
	Holder int
	Held   bool
}

// DecodeEntry parses a raw lease entry as read back from remote memory,
// validating magic, version and the reserved tail defensively (the bytes
// cross the fabric; corruption must produce an error, never a panic).
func DecodeEntry(b []byte) (Entry, error) {
	if len(b) < 16 {
		return Entry{}, fmt.Errorf("lease: short entry: %d bytes", len(b))
	}
	if m := binary.LittleEndian.Uint32(b[8:]); m != Magic {
		return Entry{}, fmt.Errorf("lease: bad magic %#x", m)
	}
	if v := binary.LittleEndian.Uint32(b[12:]); v != Version {
		return Entry{}, fmt.Errorf("lease: unsupported version %d", v)
	}
	n := len(b)
	if n > EntrySize {
		n = EntrySize
	}
	for i := 16; i < n; i++ {
		if b[i] != 0 {
			return Entry{}, fmt.Errorf("lease: reserved byte %d is %#x", i, b[i])
		}
	}
	epoch, holder, held := Unpack(binary.LittleEndian.Uint64(b))
	return Entry{Epoch: epoch, Holder: holder, Held: held}, nil
}

// EncodeEntry serializes an entry (tests and the fuzz corpus).
func EncodeEntry(e Entry) []byte {
	b := make([]byte, EntrySize)
	binary.LittleEndian.PutUint64(b, Pack(e.Epoch, e.Holder, e.Held))
	binary.LittleEndian.PutUint32(b[8:], Magic)
	binary.LittleEndian.PutUint32(b[12:], Version)
	return b
}

// Client drives one shard's lease entry from one compute node over its
// own queue pair. Not safe for concurrent use (like engine sessions).
type Client struct {
	cn     *rdma.Node
	qp     *rdma.QP
	slot   rdma.RemoteAddr
	holder int
	mr     *rdma.MemoryRegion

	// Mirror write-through (SetMirror): every successful claim or release
	// re-posts the new word to the replica's lease table, so a takeover
	// still finds the current epoch after the primary memory node dies.
	mirrorQP   *rdma.QP
	mirrorSlot rdma.RemoteAddr

	acquires  *telemetry.Counter
	takeovers *telemetry.Counter
	releases  *telemetry.Counter
	conflicts *telemetry.Counter
	held      *telemetry.Gauge
}

// NewClient connects compute node cn to the lease entry at slot on host.
// holder is cn's stable logical identity (the compute index — it must
// survive restarts, so a recovered node recognizes its own leases).
// Metrics register lazily on the fabric registry, so deployments that
// never create a lease client keep byte-identical telemetry output.
func NewClient(cn *rdma.Node, host *rdma.Node, slot rdma.RemoteAddr, holder int) *Client {
	tel := cn.Fabric().Telemetry()
	return &Client{
		cn:        cn,
		qp:        cn.NewQP(host),
		slot:      slot,
		holder:    holder,
		mr:        cn.Register(EntrySize),
		acquires:  tel.Counter("lease.acquires"),
		takeovers: tel.Counter("lease.takeovers"),
		releases:  tel.Counter("lease.releases"),
		conflicts: tel.Counter("lease.conflicts"),
		held:      tel.Gauge("lease.held"),
	}
}

// SetMirror enables best-effort write-through of the lease word to a
// replica entry at slot on host (internal/repl). Mirroring is asynchronous
// with respect to correctness: the primary entry stays the single CAS
// arbiter, and a stale replica word is benign — after the primary memory
// node dies, the fence CAS against it can only fail, so a deposed holder
// still never acknowledges; the mirrored word only needs to preserve the
// epoch high-water mark for the promoted table's next takeover to bump past.
func (c *Client) SetMirror(host *rdma.Node, slot rdma.RemoteAddr) {
	c.mirrorQP = c.cn.NewQP(host)
	c.mirrorSlot = slot
}

// mirrorWord re-posts a just-CAS'd word to the replica entry, best effort:
// a dead replica degrades redundancy, never the claim that already landed.
func (c *Client) mirrorWord(w uint64) {
	if c.mirrorQP == nil {
		return
	}
	binary.LittleEndian.PutUint64(c.mr.Bytes(0, 8), w)
	_ = c.mirrorQP.WriteSync(c.mr, 0, c.mirrorSlot, 8)
}

// Holder returns the client's logical identity.
func (c *Client) Holder() int { return c.holder }

// Addr returns the remote lease entry address (the WAL fence target).
func (c *Client) Addr() rdma.RemoteAddr { return c.slot }

// Observe reads the entry without modifying it.
func (c *Client) Observe() (Entry, error) {
	if err := c.qp.ReadSync(c.mr, 0, c.slot, EntrySize); err != nil {
		return Entry{}, err
	}
	return DecodeEntry(append([]byte(nil), c.mr.Bytes(0, EntrySize)...))
}

// Acquire claims a free lease at a bumped epoch. A lease held by another
// compute node returns ErrHeld (use Takeover to depose it); a lease this
// holder already owns is re-acquired at a fresh epoch, which fences any
// forgotten older handle.
func (c *Client) Acquire() (Lease, error) {
	for {
		e, err := c.Observe()
		if err != nil {
			return Lease{}, err
		}
		if e.Held && e.Holder != c.holder {
			c.conflicts.Inc()
			return Lease{}, fmt.Errorf("%w (holder %d, epoch %d)", ErrHeld, e.Holder, e.Epoch)
		}
		l, swapped, err := c.claim(e)
		if err != nil {
			return Lease{}, err
		}
		if swapped {
			c.acquires.Inc()
			return l, nil
		}
		c.conflicts.Inc() // lost a race; re-observe and retry
	}
}

// Takeover claims the lease at a bumped epoch regardless of the current
// holder. The moment the CAS lands, the deposed holder's next WAL commit
// fence fails, so nothing it has not yet acknowledged ever will be —
// reading the log slot after Takeover observes every acknowledged write.
func (c *Client) Takeover() (Lease, error) {
	for {
		e, err := c.Observe()
		if err != nil {
			return Lease{}, err
		}
		l, swapped, err := c.claim(e)
		if err != nil {
			return Lease{}, err
		}
		if swapped {
			c.takeovers.Inc()
			return l, nil
		}
		c.conflicts.Inc()
	}
}

// claim CASes the observed entry to (epoch+1, self).
func (c *Client) claim(e Entry) (Lease, bool, error) {
	next := Lease{Epoch: e.Epoch + 1, Holder: c.holder}
	_, swapped, err := c.qp.CompareSwapSync(c.slot, Pack(e.Epoch, e.Holder, e.Held), next.Word())
	if err != nil {
		return Lease{}, false, err
	}
	if swapped {
		c.held.Set(1)
		c.mirrorWord(next.Word())
	}
	return next, swapped, nil
}

// Release frees the lease, keeping its epoch (so the next acquirer still
// bumps past every word this holder ever fenced with). A holder deposed
// by takeover gets ErrNotHeld and the entry is left untouched.
func (c *Client) Release(l Lease) error {
	_, swapped, err := c.qp.CompareSwapSync(c.slot, l.Word(), Pack(l.Epoch, 0, false))
	if err != nil {
		return err
	}
	if !swapped {
		return ErrNotHeld
	}
	c.releases.Inc()
	c.held.Set(0)
	c.mirrorWord(Pack(l.Epoch, 0, false))
	return nil
}

// Close releases the client's fabric resources (not the lease — call
// Release first for a clean handback).
func (c *Client) Close() {
	c.qp.Close()
	if c.mirrorQP != nil {
		c.mirrorQP.Close()
	}
	c.cn.Deregister(c.mr)
}
