package dlsm

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"testing"
)

// smallTestOpts shrinks the engine so a few thousand writes flush and
// compact.
func smallTestOpts() Options {
	opts := DefaultOptions()
	opts.MemTableSize = 32 << 10
	opts.TableSize = 32 << 10
	opts.EntrySizeHint = 64
	return opts
}

// fingerprint drives a fixed workload through db and hashes every key/value
// the iterator yields afterwards: two DBs are observably equivalent iff
// their fingerprints match.
func fingerprint(t *testing.T, db *DB, n int) uint64 {
	t.Helper()
	s := db.NewSession()
	defer s.Close()
	perm := rand.New(rand.NewSource(5)).Perm(n)
	for _, i := range perm {
		if err := s.Put(tkey(i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("Put(%d): %v", i, err)
		}
	}
	db.Flush()
	db.WaitForCompactions()
	return iterHash(t, db)
}

// iterHash hashes the DB's full iterator output.
func iterHash(t *testing.T, db *DB) uint64 {
	t.Helper()
	s := db.NewSession()
	defer s.Close()
	h := fnv.New64a()
	it := s.NewIterator()
	defer it.Close()
	for it.First(); it.Valid(); it.Next() {
		h.Write(it.Key())
		h.Write([]byte{0})
		h.Write(it.Value())
		h.Write([]byte{1})
	}
	return h.Sum64()
}

func tkey(i int) []byte { return []byte(fmt.Sprintf("key-%08d", i)) }

// TestOpenDBEquivalence: each legacy constructor and its OpenDB twin,
// driven with the same workload in fresh identical deployments, produce
// observably identical DBs.
func TestOpenDBEquivalence(t *testing.T) {
	const n, lambda = 3000, 4
	bounds := UniformBoundaries(lambda, n, tkey)
	cases := []struct {
		name   string
		legacy func(d *Deployment, opts Options) *DB
		new    func(d *Deployment, opts Options) *DB
	}{
		{"Open", func(d *Deployment, opts Options) *DB {
			return Open(d, opts)
		}, func(d *Deployment, opts Options) *DB {
			return mustOpen(OpenDB(d, RolePrimary, Placement{}, opts))
		}},
		{"OpenSharded", func(d *Deployment, opts Options) *DB {
			return OpenSharded(d, opts, lambda, bounds)
		}, func(d *Deployment, opts Options) *DB {
			return mustOpen(OpenDB(d, RolePrimary, Placement{Lambda: lambda, Boundaries: bounds}, opts))
		}},
		{"OpenAt", func(d *Deployment, opts Options) *DB {
			return OpenAt(d, 1, d.Servers, opts, lambda, bounds)
		}, func(d *Deployment, opts Options) *DB {
			return mustOpen(OpenDB(d, RolePrimary,
				Placement{ComputeIdx: 1, Servers: d.Servers, Lambda: lambda, Boundaries: bounds}, opts))
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var fps [2]uint64
			for v, open := range []func(d *Deployment, opts Options) *DB{tc.legacy, tc.new} {
				cfg := SingleNodeConfig()
				cfg.ComputeNodes = 2
				d := NewDeployment(cfg)
				d.Run(func() {
					db := open(d, smallTestOpts())
					fps[v] = fingerprint(t, db, n)
					db.Close()
				})
				d.Close()
			}
			if fps[0] != fps[1] {
				t.Fatalf("%s: legacy fingerprint %x != OpenDB fingerprint %x", tc.name, fps[0], fps[1])
			}
		})
	}
}

// TestOpenDBRecoverCrossEquivalence proves the two paths derive identical
// WAL slot keys, in the only way that matters: a DB written through the
// legacy constructor is recoverable through OpenDB, and vice versa. A slot
// key mismatch would recover an empty DB and fail the marker checks.
func TestOpenDBRecoverCrossEquivalence(t *testing.T) {
	const n = 2000
	type opener func(d *Deployment, opts Options) *DB
	type recoverer func(d *Deployment, opts Options) (*DB, error)
	writeLegacy := opener(func(d *Deployment, opts Options) *DB { return Open(d, opts) })
	writeNew := opener(func(d *Deployment, opts Options) *DB {
		return mustOpen(OpenDB(d, RolePrimary, Placement{}, opts))
	})
	recoverLegacy := recoverer(func(d *Deployment, opts Options) (*DB, error) {
		return RecoverAt(d, 1, 0, d.Servers, opts, 1, nil)
	})
	recoverNew := recoverer(func(d *Deployment, opts Options) (*DB, error) {
		return OpenDB(d, RoleRecover, Placement{ComputeIdx: 1, Owner: 0}, opts)
	})
	for _, tc := range []struct {
		name string
		w    opener
		r    recoverer
	}{
		{"legacy-write/OpenDB-recover", writeLegacy, recoverNew},
		{"OpenDB-write/legacy-recover", writeNew, recoverLegacy},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := SingleNodeConfig()
			cfg.ComputeNodes = 2
			d := NewDeployment(cfg)
			d.Run(func() {
				opts := smallTestOpts()
				opts.Durability = DurabilitySync
				db := tc.w(d, opts)
				s := db.NewSession()
				for i := 0; i < n; i++ {
					if err := s.Put(tkey(i), []byte(fmt.Sprintf("v%d", i))); err != nil {
						t.Fatalf("Put(%d): %v", i, err)
					}
				}
				// Acked but never flushed: only the remote log has it.
				if err := s.Put([]byte("marker"), []byte("acked-unflushed")); err != nil {
					t.Fatalf("Put(marker): %v", err)
				}
				d.Compute[0].Crash()
				s.Close()
				db.Close()

				db2, err := tc.r(d, opts)
				if err != nil {
					t.Fatalf("recover: %v", err)
				}
				s2 := db2.NewSession()
				for i := 0; i < n; i += 13 {
					v, err := s2.Get(tkey(i))
					if err != nil || string(v) != fmt.Sprintf("v%d", i) {
						t.Fatalf("Get(%d) after recovery: %q, %v", i, v, err)
					}
				}
				if v, err := s2.Get([]byte("marker")); err != nil || string(v) != "acked-unflushed" {
					t.Fatalf("unflushed acked write lost: %q, %v", v, err)
				}
				s2.Close()
				db2.Close()
			})
			d.Close()
		})
	}
}

// TestOpenDBScaleoutCrossEquivalence: a shard group opened with the legacy
// lease-holding primary is attachable and takeover-able through OpenDB —
// lease slots and log slots land where the other path expects them.
func TestOpenDBScaleoutCrossEquivalence(t *testing.T) {
	const n = 2000
	cfg := SingleNodeConfig()
	cfg.ComputeNodes = 3
	d := NewDeployment(cfg)
	d.Run(func() {
		opts := smallTestOpts()
		opts.Durability = DurabilitySync
		db, err := OpenPrimaryAt(d, 0, 0, d.Servers, opts, 1, nil)
		if err != nil {
			t.Fatalf("OpenPrimaryAt: %v", err)
		}
		s := db.NewSession()
		for i := 0; i < n; i++ {
			if err := s.Put(tkey(i), []byte(fmt.Sprintf("v%d", i))); err != nil {
				t.Fatalf("Put(%d): %v", i, err)
			}
		}
		db.Flush()
		if err := db.PublishCheckpoint(); err != nil {
			t.Fatalf("PublishCheckpoint: %v", err)
		}

		// OpenDB-attached secondary reads the legacy primary's checkpoint.
		sec, err := OpenDB(d, RoleSecondary, Placement{ComputeIdx: 1, Owner: 0}, opts)
		if err != nil {
			t.Fatalf("OpenDB secondary: %v", err)
		}
		ss := sec.NewSession()
		for i := 0; i < n; i += 31 {
			v, err := ss.Get(tkey(i))
			if err != nil || string(v) != fmt.Sprintf("v%d", i) {
				t.Fatalf("secondary Get(%d): %q, %v", i, v, err)
			}
		}
		ss.Close()
		sec.Close()

		// OpenDB takeover deposes the legacy primary's leases.
		d.Compute[0].Crash()
		s.Close()
		db.Close()
		nb, err := OpenDB(d, RoleTakeover, Placement{ComputeIdx: 2, Owner: 0}, opts)
		if err != nil {
			t.Fatalf("OpenDB takeover: %v", err)
		}
		s2 := nb.NewSession()
		for i := 0; i < n; i += 13 {
			v, err := s2.Get(tkey(i))
			if err != nil || string(v) != fmt.Sprintf("v%d", i) {
				t.Fatalf("Get(%d) after takeover: %q, %v", i, v, err)
			}
		}
		s2.Close()
		nb.Close()
	})
	d.Close()
}
