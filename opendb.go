package dlsm

import (
	"fmt"

	"dlsm/internal/memnode"
	"dlsm/internal/shard"
)

// Role selects what OpenDB opens. Every constructor in this package is a
// (deprecated) wrapper over one (Role, Placement) combination.
type Role int

const (
	// RolePrimary opens a fresh read-write DB. With Placement.Lease set it
	// additionally acquires one epoch-fenced write lease per shard
	// (multi-compute scale-out); without a lease it logs under its own
	// compute index.
	RolePrimary Role = iota
	// RoleSecondary attaches a read-only secondary to the shard group of
	// the primary identified by Placement.Owner: Gets and scans serve from
	// the remote SSTables at the primary's last published checkpoint
	// (bounded staleness); writes return ErrReadOnly. Refresh with
	// DB.RefreshView or ReadOptions.MaxStaleness.
	RoleSecondary
	// RoleTakeover deposes the current lease holder of Placement.Owner's
	// shard group (the CAS fences the deposed primary's unacknowledged
	// appends before the log is read) and rebuilds the shards from their
	// remote write-ahead logs: zero-loss failover to a new compute node.
	RoleTakeover
	// RoleRecover rebuilds the DB that compute node Placement.Owner ran
	// before crashing, replaying its remote write-ahead logs (§VIII). The
	// Placement geometry must match the dead DB's; Options.Durability must
	// be set.
	RoleRecover
)

// String names the role for error messages.
func (r Role) String() string {
	switch r {
	case RolePrimary:
		return "primary"
	case RoleSecondary:
		return "secondary"
	case RoleTakeover:
		return "takeover"
	case RoleRecover:
		return "recover"
	}
	return fmt.Sprintf("role(%d)", int(r))
}

// Placement names where a DB runs and which remote resources it binds: the
// compute node it runs on, the logical owner whose log slots and shard
// leases it uses, the memory nodes its shards round-robin across, and the
// shard geometry. The zero value places a single-shard DB on the
// deployment's first compute node over all its memory nodes — exactly what
// Open(d, opts) always did.
//
// The owner-remap rule: ComputeIdx chooses where the DB runs, Owner names
// whose log slots (and shard leases) it adopts. A recovered or taken-over
// DB keeps logging under Owner — never ComputeIdx — so a later recovery,
// from any compute node, derives the same slot keys and finds the same
// logs. Remapping the owner itself would orphan the dead node's slots and
// silently start an empty DB.
type Placement struct {
	ComputeIdx int               // compute node the DB runs on (default 0)
	Owner      int               // logical identity whose slots/leases it uses (default 0)
	Servers    []*memnode.Server // shard i uses Servers[i % len]; nil means all of d.Servers
	Lambda     int               // shard count (§VII); 0 means 1
	Boundaries [][]byte          // Lambda-1 ascending user-key split points

	// Lease makes a RolePrimary the shard group's single writer under an
	// epoch-fenced per-shard lease (ErrLeaseHeld if another compute node
	// owns one; the fence rides the WAL commit path, so Options.Durability
	// is required). RoleTakeover implies it.
	Lease bool
}

// OpenDB opens, recovers, takes over, or attaches to a dLSM index — the
// single constructor behind Open, OpenSharded, OpenAt, Recover,
// RecoverSharded, RecoverAt, OpenPrimaryAt, TakeoverAt, OpenSecondaryAt
// and the per-node loops of OpenCluster / RecoverCluster. The Role picks
// the protocol, the Placement picks the nodes and shard geometry, and
// opts configures each shard's engine.
//
// With Options.Durability set, the facade manages log-slot identity
// itself: Options.WALOwner is overwritten from the Placement (and each
// shard gets WALShard = its index), so DBs on different compute nodes
// sharing a memory node never collide. Use the engine package directly
// for manual slot control.
func OpenDB(d *Deployment, role Role, p Placement, opts Options) (*DB, error) {
	if p.Lambda == 0 {
		p.Lambda = 1
	}
	if p.Servers == nil {
		p.Servers = d.Servers
	}
	if p.ComputeIdx < 0 || p.ComputeIdx >= len(d.Compute) {
		return nil, fmt.Errorf("dlsm: placement names compute node %d of a %d-node deployment", p.ComputeIdx, len(d.Compute))
	}
	cn := d.Compute[p.ComputeIdx]
	switch role {
	case RolePrimary:
		if p.Lease {
			opts.WALOwner = p.Owner
			inner, err := shard.NewPrimary(cn, p.Servers, p.Lambda, p.Boundaries, opts, p.ComputeIdx)
			if err != nil {
				return nil, err
			}
			return &DB{inner: inner}, nil
		}
		// A lease-less primary is a fresh DB: it has no predecessor's slots
		// to adopt, so it logs under its own compute index.
		if p.Owner != 0 && p.Owner != p.ComputeIdx {
			return nil, fmt.Errorf("dlsm: a primary without a lease logs under its own compute index; Owner %d conflicts with ComputeIdx %d", p.Owner, p.ComputeIdx)
		}
		opts.WALOwner = p.ComputeIdx
		inner, err := shard.New(cn, p.Servers, p.Lambda, p.Boundaries, opts)
		if err != nil {
			return nil, err
		}
		return &DB{inner: inner}, nil
	case RoleSecondary:
		opts.WALOwner = p.Owner
		inner, err := shard.OpenSecondary(cn, p.Servers, p.Lambda, p.Boundaries, opts)
		if err != nil {
			return nil, err
		}
		return &DB{inner: inner}, nil
	case RoleTakeover:
		opts.WALOwner = p.Owner
		inner, err := shard.Takeover(cn, p.Servers, p.Lambda, p.Boundaries, opts, p.ComputeIdx)
		if err != nil {
			return nil, err
		}
		return &DB{inner: inner}, nil
	case RoleRecover:
		opts.WALOwner = p.Owner
		inner, err := shard.Recover(cn, p.Servers, p.Lambda, p.Boundaries, opts)
		if err != nil {
			return nil, err
		}
		return &DB{inner: inner}, nil
	}
	return nil, fmt.Errorf("dlsm: unknown role %v", role)
}

// mustOpen adapts OpenDB to the legacy constructors that return a bare
// *DB: their roles cannot fail except by panicking inside the shard layer.
func mustOpen(db *DB, err error) *DB {
	if err != nil {
		panic(err)
	}
	return db
}
