module dlsm

go 1.22
