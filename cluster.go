package dlsm

import (
	"fmt"

	"dlsm/internal/memnode"
)

// ClusterDB deploys dLSM across c compute nodes and m memory nodes (§IX):
// the key space splits into c contiguous slices (one per compute node, so
// single-shard accesses never cross compute nodes), each slice splits into
// λ shards, and the resulting c·λ shard LSM-trees are assigned to memory
// nodes round-robin for load balance.
type ClusterDB struct {
	dbs        []*DB
	boundaries [][]byte // c-1 split points between compute nodes
}

// OpenCluster opens a DB per compute node. boundaries must contain exactly
// c-1 ascending user keys splitting the space across compute nodes, and
// perNode λ-1 split points are derived per slice by splitRange.
// Options.CacheBudgetBytes is a per-compute-node budget — every compute
// node has its own DRAM, so each node's λ shards split one full budget.
func OpenCluster(d *Deployment, opts Options, lambda int, boundaries [][]byte, shardBounds func(compute int) [][]byte) *ClusterDB {
	c := len(d.Compute)
	if len(boundaries) != c-1 {
		panic("dlsm: OpenCluster needs computeNodes-1 boundaries")
	}
	cl := &ClusterDB{boundaries: boundaries}
	for i := 0; i < c; i++ {
		// Round-robin shard->memory-node placement across the cluster:
		// compute i's λ shards start at memory node (i*lambda) mod m.
		var sb [][]byte
		if shardBounds != nil {
			sb = shardBounds(i)
		}
		cl.dbs = append(cl.dbs, mustOpen(OpenDB(d, RolePrimary,
			Placement{ComputeIdx: i, Servers: clusterServers(d, i, lambda), Lambda: lambda, Boundaries: sb}, opts)))
	}
	return cl
}

// clusterServers returns compute node i's round-robin shard→memory-node
// placement, shared by OpenCluster and RecoverCluster (the two must agree
// or recovery would read the wrong memory nodes).
func clusterServers(d *Deployment, i, lambda int) []*memnode.Server {
	m := len(d.Servers)
	servers := make([]*memnode.Server, lambda)
	for j := 0; j < lambda; j++ {
		servers[j] = d.Servers[(i*lambda+j)%m]
	}
	return servers
}

// RecoverCluster rebuilds every compute node's DB from the remote
// write-ahead logs after a full compute-tier restart. The arguments must
// match the original OpenCluster call, and opts must have Durability set.
// Each compute node i recovers its own slice (WALOwner = i, assigned by
// OpenCluster via OpenAt) onto the same node index. To recover a single
// crashed compute node instead, call RecoverAt with owner = that node's
// index and swap the result into place.
func RecoverCluster(d *Deployment, opts Options, lambda int, boundaries [][]byte, shardBounds func(compute int) [][]byte) (*ClusterDB, error) {
	c := len(d.Compute)
	if len(boundaries) != c-1 {
		return nil, fmt.Errorf("dlsm: RecoverCluster needs %d boundaries, got %d", c-1, len(boundaries))
	}
	cl := &ClusterDB{boundaries: boundaries}
	for i := 0; i < c; i++ {
		var sb [][]byte
		if shardBounds != nil {
			sb = shardBounds(i)
		}
		db, err := OpenDB(d, RoleRecover,
			Placement{ComputeIdx: i, Owner: i, Servers: clusterServers(d, i, lambda), Lambda: lambda, Boundaries: sb}, opts)
		if err != nil {
			cl.Close()
			return nil, fmt.Errorf("dlsm: recovering compute %d: %w", i, err)
		}
		cl.dbs = append(cl.dbs, db)
	}
	return cl, nil
}

// Compute returns the DB owned by compute node i. Benchmark drivers that
// "run on" node i use it directly: their key slice lives entirely there.
func (c *ClusterDB) Compute(i int) *DB { return c.dbs[i] }

// NumComputes returns the compute-node count.
func (c *ClusterDB) NumComputes() int { return len(c.dbs) }

// Flush checkpoints every compute node's shards.
func (c *ClusterDB) Flush() {
	for _, db := range c.dbs {
		db.Flush()
	}
}

// WaitForCompactions settles the whole cluster.
func (c *ClusterDB) WaitForCompactions() {
	for _, db := range c.dbs {
		db.WaitForCompactions()
	}
}

// Close shuts down every compute node's DB.
func (c *ClusterDB) Close() {
	for _, db := range c.dbs {
		db.Close()
	}
}
