package dlsm

import "dlsm/internal/memnode"

// ClusterDB deploys dLSM across c compute nodes and m memory nodes (§IX):
// the key space splits into c contiguous slices (one per compute node, so
// single-shard accesses never cross compute nodes), each slice splits into
// λ shards, and the resulting c·λ shard LSM-trees are assigned to memory
// nodes round-robin for load balance.
type ClusterDB struct {
	dbs        []*DB
	boundaries [][]byte // c-1 split points between compute nodes
}

// OpenCluster opens a DB per compute node. boundaries must contain exactly
// c-1 ascending user keys splitting the space across compute nodes, and
// perNode λ-1 split points are derived per slice by splitRange.
// Options.CacheBudgetBytes is a per-compute-node budget — every compute
// node has its own DRAM, so each node's λ shards split one full budget.
func OpenCluster(d *Deployment, opts Options, lambda int, boundaries [][]byte, shardBounds func(compute int) [][]byte) *ClusterDB {
	c := len(d.Compute)
	if len(boundaries) != c-1 {
		panic("dlsm: OpenCluster needs computeNodes-1 boundaries")
	}
	cl := &ClusterDB{boundaries: boundaries}
	m := len(d.Servers)
	for i := 0; i < c; i++ {
		// Round-robin shard->memory-node placement across the cluster:
		// compute i's λ shards start at memory node (i*lambda) mod m.
		servers := make([]*memnode.Server, lambda)
		for j := 0; j < lambda; j++ {
			servers[j] = d.Servers[(i*lambda+j)%m]
		}
		var sb [][]byte
		if shardBounds != nil {
			sb = shardBounds(i)
		}
		cl.dbs = append(cl.dbs, OpenAt(d, i, servers, opts, lambda, sb))
	}
	return cl
}

// Compute returns the DB owned by compute node i. Benchmark drivers that
// "run on" node i use it directly: their key slice lives entirely there.
func (c *ClusterDB) Compute(i int) *DB { return c.dbs[i] }

// NumComputes returns the compute-node count.
func (c *ClusterDB) NumComputes() int { return len(c.dbs) }

// Flush checkpoints every compute node's shards.
func (c *ClusterDB) Flush() {
	for _, db := range c.dbs {
		db.Flush()
	}
}

// WaitForCompactions settles the whole cluster.
func (c *ClusterDB) WaitForCompactions() {
	for _, db := range c.dbs {
		db.WaitForCompactions()
	}
}

// Close shuts down every compute node's DB.
func (c *ClusterDB) Close() {
	for _, db := range c.dbs {
		db.Close()
	}
}
