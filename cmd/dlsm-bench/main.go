// Command dlsm-bench regenerates the paper's evaluation figures (§XI) on
// the simulated disaggregated-memory testbed. Each figure prints as a
// throughput table whose shape (orderings, ratios, crossovers) is compared
// against the paper in EXPERIMENTS.md.
//
// Usage:
//
//	dlsm-bench -fig 7a [-n 200000] [-threads 1,2,4,8,16]
//	dlsm-bench -fig all -n 100000
//
// Figures: 7a 7b 8 9 10 11 12 13 14a 14b 15 cache faults wal repl scan
// scaleout offload rebalance ycsb all.
// Throughput is virtual-time based (see DESIGN.md); -n scales the paper's
// 100M-key workloads down to laptop runtimes while preserving the
// data:memtable:sstable ratios.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"dlsm/internal/bench"
)

func main() {
	var (
		fig     = flag.String("fig", "", "figure to reproduce: 7a 7b 8 9 10 11 12 13 14a 14b 15 cache faults wal repl scan scaleout offload rebalance ycsb all")
		n       = flag.Int("n", 200_000, "operations per data point (paper: 100M)")
		threads = flag.String("threads", "1,2,4,8,16", "thread counts for thread-sweep figures")
		quiet   = flag.Bool("q", false, "suppress per-point progress output")
		metrics = flag.Bool("metrics", true, "print a telemetry snapshot after each figure")
	)
	flag.Parse()
	if *fig == "" {
		flag.Usage()
		os.Exit(2)
	}
	if !*quiet {
		bench.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "  ... "+format+"\n", args...)
		}
	}

	ths := parseInts(*threads)
	figs := strings.Split(*fig, ",")
	if *fig == "all" {
		figs = []string{"7a", "7b", "8", "9", "10", "11", "12", "13", "14a", "14b", "15", "cache", "faults", "wal", "repl", "scan", "scaleout", "offload", "rebalance", "ycsb"}
	}
	for _, f := range figs {
		runFigure(f, *n, ths, *metrics)
	}
}

func runFigure(fig string, n int, threads []int, metrics bool) {
	out := os.Stdout
	// show prints a figure, optionally followed by its telemetry snapshot.
	show := func(f *bench.Figure) {
		f.Print(out)
		if metrics {
			f.PrintMetrics(out)
		}
	}
	switch fig {
	case "7a":
		show(bench.Fig7a(n, threads))
	case "7b":
		show(bench.Fig7b(n, threads))
	case "8":
		show(bench.Fig8(n, threads))
	case "9":
		sizes := []int{n / 4, n / 2, n}
		w, r, space := bench.Fig9(sizes, maxOf(threads))
		show(w)
		r.Print(out)
		fmt.Fprintln(out, "\nRemote-memory space usage (§XI-C3):")
		var systems []string
		for s := range space {
			systems = append(systems, s)
		}
		sort.Strings(systems)
		for _, s := range systems {
			fmt.Fprintf(out, "  %-24s %s\n", s, strings.Join(space[s], "  "))
		}
	case "10":
		show(bench.Fig10(n, maxOf(threads), []float64{0, 0.05, 0.5, 0.95, 1.0}))
	case "11":
		show(bench.Fig11(n, 8))
	case "12":
		fig12 := bench.Fig12(n, []int{1, 2, 4, 8, 12}, []int{1, 8, 16})
		fig12.Print(out)
		fmt.Fprintln(out, "\nRemote CPU utilization per point:")
		for _, s := range fig12.Series {
			fmt.Fprintf(out, "  %-26s", s.Label)
			for _, p := range s.Points {
				fmt.Fprintf(out, "  %3.0f%%", p.R.RemoteCPUUtil*100)
			}
			fmt.Fprintln(out)
		}
	case "13":
		show(bench.Fig13(n, maxOf(threads)))
	case "14a":
		show(bench.Fig14a(n/4, []int{1, 2, 4, 8, 16}, maxOf(threads)))
	case "14b":
		show(bench.Fig14b(n, []int{1, 2, 4, 8}, 8))
	case "cache":
		show(bench.FigCache(n, maxOf(threads)))
	case "faults":
		show(bench.FigFaults(n, maxOf(threads)))
	case "wal":
		show(bench.FigWAL(n, maxOf(threads)))
	case "repl":
		show(bench.FigRepl(n, maxOf(threads)))
	case "scan":
		// Two scanning threads: latency hiding is visible when the wire has
		// headroom; at 8+ threads concurrent scans saturate the link and
		// every depth converges on its bandwidth ceiling.
		show(bench.FigScan(n, 2))
	case "offload":
		// 16 writer threads: high write pressure keeps the flush pipeline
		// busy, which is where the three offloaded layers spend compute CPU.
		figOff := bench.FigOffload(n, 16)
		figOff.Print(out)
		fmt.Fprintln(out, "\nCPU utilization per point (compute / remote):")
		for _, s := range figOff.Series {
			fmt.Fprintf(out, "  %-10s", s.Label)
			for _, p := range s.Points {
				fmt.Fprintf(out, "  %4.1f%%/%4.1f%%", p.R.ComputeCPUUtil*100, p.R.RemoteCPUUtil*100)
			}
			fmt.Fprintln(out)
		}
	case "rebalance":
		// 16 writer threads: the hot shard must stall-pressure its memtable
		// pipeline for the split to pay off; the progress lines carry the
		// balance.* decision counters per point.
		show(bench.FigRebalance(n, 16))
	case "ycsb":
		// The full YCSB A-F matrix through the multi-tenant service tier,
		// then the mixed-tenant scenario: admission control on the
		// scan-heavy tenant must strictly improve the latency-sensitive
		// tenant's p99.
		bench.FigYCSB(n, maxOf(threads)).Print(out)
	case "scaleout":
		// 8 threads per compute node: one node leaves fabric headroom, so
		// adding read-only secondaries must raise aggregate throughput.
		show(bench.FigScaleout(n, 8))
	case "15":
		w, r := bench.Fig15(n/4, []int{1, 2, 4, 8}, 8)
		show(w)
		r.Print(out)
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", fig)
		os.Exit(2)
	}
}

func parseInts(s string) []int {
	var out []int
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad thread count %q\n", p)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func maxOf(xs []int) int {
	m := xs[0]
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
